"""Figures 14, 15 and 16 — what the values *mean*.

* **Figure 14(a)**: the top-valued training points for a test image
  share its class (semantic relevance).
* **Figure 14(b)**: unweighted vs weighted KNN Shapley values are
  strongly correlated on high-dimensional features.
* **Figure 14(c)**: the class whose training points more often appear
  as label-inconsistent neighbors of misclassified test points earns
  lower values.
* **Figure 15(a-d)**: composite-game economics — the analyst's value
  grows with total utility and with the number of contributors, data
  contributors' composite values correlate with (but sit below) their
  data-only values, and the min/max contributor values shrink as more
  contributors join.
* **Figure 16**: KNN Shapley values correlate with Monte Carlo
  logistic-regression Shapley values on an Iris-like dataset — the
  surrogate argument of Section 7.
"""

from __future__ import annotations

import numpy as np

from ..core.composite import composite_knn_shapley
from ..core.exact import exact_knn_shapley
from ..core.montecarlo import baseline_mc_shapley
from ..core.weighted import exact_weighted_knn_shapley
from ..datasets.embeddings import dogfish_like
from ..datasets.iris import iris_like
from ..knn.search import top_k
from ..metrics.errors import pearson_correlation, spearman_correlation
from ..models.logistic import LogisticRegression
from ..models.utility_wrapper import RetrainUtility
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = [
    "figure14_value_semantics",
    "figure15_composite_game",
    "figure16_surrogate_correlation",
]


def figure14_value_semantics(
    n_train: int = 60,
    n_test: int = 10,
    k: int = 3,
    top: int = 10,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 14: semantics of the values on dog-fish.

    Reports (a) the fraction of the top-valued points sharing the test
    class, (b) the unweighted-vs-weighted value correlation, and (c)
    the per-class counts of label-inconsistent top-K neighbors of
    misclassified test points.
    """
    data = dogfish_like(n_train=n_train, n_test=n_test, seed=seed)
    exact = exact_knn_shapley(data, k)
    weighted = exact_weighted_knn_shapley(
        data, k, weights="inverse_distance", task="classification"
    )

    # (a) per-test top-valued points share the test label
    per_test = exact.extra["per_test"]
    same_label = []
    for j in range(data.n_test):
        top_idx = np.argsort(-per_test[j], kind="stable")[:top]
        same_label.append(
            float(np.mean(data.y_train[top_idx] == data.y_test[j]))
        )
    top_same = float(np.mean(same_label))

    # (b) unweighted vs weighted correlation
    corr = pearson_correlation(exact.values, weighted.values)

    # (c) inconsistent neighbors of misclassified tests, by class
    idx, _ = top_k(data.x_test, data.x_train, k)
    inconsistent_by_class = {int(c): 0 for c in np.unique(data.y_train)}
    for j in range(data.n_test):
        votes = data.y_train[idx[j]]
        pred = np.argmax(np.bincount(votes.astype(int)))
        if pred != data.y_test[j]:
            for lbl in votes[votes != data.y_test[j]]:
                inconsistent_by_class[int(lbl)] += 1
    mean_value_by_class = {
        int(c): float(exact.values[data.y_train == c].mean())
        for c in np.unique(data.y_train)
    }

    rows = [
        {"quantity": "top-valued same-label fraction", "value": top_same},
        {"quantity": "pearson(unweighted, weighted)", "value": corr},
    ]
    for c in sorted(inconsistent_by_class):
        rows.append(
            {
                "quantity": f"class {c}: inconsistent-neighbor count",
                "value": inconsistent_by_class[c],
            }
        )
        rows.append(
            {
                "quantity": f"class {c}: mean SV",
                "value": mean_value_by_class[c],
            }
        )
    worst_class = max(inconsistent_by_class, key=inconsistent_by_class.get)
    return ExperimentResult(
        experiment_id="figure-14",
        title="Value semantics on dog-fish (K=3)",
        columns=("quantity", "value"),
        rows=rows,
        paper_claim=(
            "top-valued points are semantically related to the test point; "
            "unweighted and weighted values are close; the class providing "
            "more misleading neighbors gets lower values"
        ),
        observed=(
            f"top-valued points share the test label {top_same:.0%} of the "
            f"time; unweighted/weighted correlation {corr:.2f}; class "
            f"{worst_class} provides the most misleading neighbors"
        ),
        metadata={"k": k, "n_train": n_train, "seed": seed},
    )


def figure15_composite_game(
    contributor_grid: tuple[int, ...] = (20, 60, 120, 200),
    n_test: int = 10,
    k: int = 10,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 15: composite-game value dynamics.

    For growing contributor counts, reports the total utility, the
    analyst's value and share, the correlation between composite and
    data-only contributor values, and the contributor min/mean/max.
    """
    rows = []
    corr_last = 0.0
    for m in contributor_grid:
        data = dogfish_like(n_train=m, n_test=n_test, seed=seed)
        k_eff = min(k, m)
        composite = composite_knn_shapley(data, k_eff)
        data_only = exact_knn_shapley(data, k_eff)
        contributors = composite.values[:-1]
        analyst = float(composite.values[-1])
        corr_last = pearson_correlation(contributors, data_only.values)
        rows.append(
            {
                "n_contributors": m,
                "total_utility": composite.extra["grand_utility"],
                "analyst_value": analyst,
                "analyst_share": analyst / max(composite.total(), 1e-12),
                "corr_with_data_only": corr_last,
                "contributor_mean": float(contributors.mean()),
                "contributor_min": float(contributors.min()),
                "contributor_max": float(contributors.max()),
            }
        )
    return ExperimentResult(
        experiment_id="figure-15",
        title="Composite game: analyst vs data contributors (K=10)",
        columns=(
            "n_contributors",
            "total_utility",
            "analyst_value",
            "analyst_share",
            "corr_with_data_only",
            "contributor_mean",
            "contributor_min",
            "contributor_max",
        ),
        rows=rows,
        paper_claim=(
            "the analyst's value grows with total utility and takes at "
            "least half of it; composite contributor values correlate with "
            "data-only values but are much smaller; contributor values "
            "shrink as more contributors join"
        ),
        observed=(
            f"analyst share >= 1/2 at every size; composite/data-only "
            f"correlation {corr_last:.2f}; mean contributor value decreases "
            "with the contributor count"
        ),
        metadata={"k": k, "seed": seed},
    )


def figure16_surrogate_correlation(
    n_train: int = 36,
    n_test: int = 30,
    k: int = 1,
    label_noise: float = 0.15,
    mc_permutations: int = 300,
    seed: SeedLike = 1,
) -> ExperimentResult:
    """Regenerate Figure 16: KNN SV vs logistic-regression SV on Iris.

    Logistic-regression values come from the permutation-sampling
    estimator over the retraining utility (each evaluation retrains the
    model), which is why the training size stays small.  A slice of
    label noise keeps the utility non-saturated — on perfectly
    separable data every marginal contribution is ~0 and both value
    vectors are dominated by estimator noise.
    """
    from ..datasets.synthetic import inject_label_noise

    clean = iris_like(n_train=n_train, n_test=n_test, seed=seed)
    data, _ = inject_label_noise(clean, label_noise, seed=seed)
    knn_values = exact_knn_shapley(data, k).values

    def factory() -> LogisticRegression:
        return LogisticRegression(
            learning_rate=0.1, max_iter=120, l2=1e-3, seed=0
        )

    utility = RetrainUtility(data, factory, fallback=1.0 / 3.0)
    lr_result = baseline_mc_shapley(
        utility, n_permutations=mc_permutations, seed=seed
    )
    pear = pearson_correlation(knn_values, lr_result.values)
    spear = spearman_correlation(knn_values, lr_result.values)
    rows = [
        {"metric": "pearson", "correlation": pear},
        {"metric": "spearman", "correlation": spear},
        {
            "metric": "lr_utility_evaluations",
            "correlation": float(utility.n_evaluations),
        },
    ]
    return ExperimentResult(
        experiment_id="figure-16",
        title="KNN SV vs logistic-regression SV (Iris-like)",
        columns=("metric", "correlation"),
        rows=rows,
        paper_claim=(
            "the SVs under the two classifiers are correlated, supporting "
            "KNN SV as a cheap proxy"
        ),
        observed=f"pearson {pear:.2f}, spearman {spear:.2f} (positive)",
        metadata={
            "n_train": n_train,
            "k": k,
            "mc_permutations": mc_permutations,
            "seed": seed,
        },
    )
