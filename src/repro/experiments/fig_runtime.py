"""Figures 2, 6, 7 and 17 — runtime comparisons of the valuation methods.

* **Figure 6(a, b)**: runtime vs training size for the exact algorithm,
  the baseline MC approximation and the LSH-based approximation
  (bootstrap-grown MNIST-like data, eps = delta = 0.1), plus the
  exact-over-LSH speedup trend.
* **Figure 7 / Figure 17**: per-test-point runtime of exact vs LSH on
  the CIFAR-10-like / ImageNet-like / Yahoo10m-like stand-ins with the
  estimated relative contrast, for K = 1 (Fig 7) and K = 2, 5 (Fig 17).
* **Figure 2 (complexity table)**: measured log-log scaling exponents
  confirming the asymptotic table of the paper's Figure 2.
"""

from __future__ import annotations


from ..core.exact import exact_knn_shapley
from ..core.montecarlo import baseline_mc_shapley, improved_mc_shapley
from ..core.weighted import exact_weighted_knn_shapley
from ..datasets.embeddings import (
    cifar10_like,
    imagenet_like,
    mnist_deep_like,
    yahoo10m_like,
)
from ..lsh.valuation import lsh_knn_shapley
from ..metrics.errors import max_abs_error
from ..metrics.timing import fit_loglog_slope, time_call
from ..rng import SeedLike
from ..utility.knn_utility import KNNClassificationUtility
from .reporting import ExperimentResult

__all__ = [
    "figure6_runtime_vs_n",
    "figure7_dataset_table",
    "figure17_dataset_table_k25",
    "figure2_complexity_table",
]


def figure6_runtime_vs_n(
    sizes: tuple[int, ...] = (500, 1000, 2000, 4000),
    mc_max_n: int = 1000,
    n_test: int = 5,
    k: int = 1,
    epsilon: float = 0.1,
    delta: float = 0.1,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 6: runtime of exact / baseline MC / LSH vs N.

    The baseline MC is only run up to ``mc_max_n`` points (its
    quadratic growth makes larger sizes pointless to wait for — the
    paper's point exactly).
    """
    rows = []
    for n in sizes:
        data = mnist_deep_like(n_train=n, n_test=n_test, seed=seed)
        exact_t = time_call(lambda: exact_knn_shapley(data, k), repeat=3, warmup=1)
        lsh_res: dict = {}

        def run_lsh() -> object:
            res = lsh_knn_shapley(
                data, k, epsilon=epsilon, delta=delta, seed=seed
            )
            lsh_res["res"] = res
            return res

        lsh_t = time_call(run_lsh)
        lsh_err = max_abs_error(lsh_res["res"].values, exact_t.value.values)
        row = {
            "n_train": n,
            "exact_s": exact_t.seconds,
            "lsh_query_s": lsh_res["res"].extra["query_seconds"],
            "lsh_total_s": lsh_t.seconds,
            "lsh_max_err": lsh_err,
            "mc_baseline_s": float("nan"),
        }
        if n <= mc_max_n:
            utility = KNNClassificationUtility(data, k)
            # A handful of permutations is enough to time one unit and
            # extrapolate linearly to the full Hoeffding budget.
            probe = 3
            mc_t = time_call(
                lambda: baseline_mc_shapley(
                    utility, n_permutations=probe, seed=seed
                )
            )
            from ..core.bounds import hoeffding_permutations

            budget = hoeffding_permutations(
                epsilon, delta, n, utility.difference_range()
            )
            row["mc_baseline_s"] = mc_t.seconds / probe * budget
        rows.append(row)
    slope = fit_loglog_slope(
        [r["n_train"] for r in rows], [max(r["exact_s"], 1e-7) for r in rows]
    )
    return ExperimentResult(
        experiment_id="figure-6",
        title="Runtime vs training size: exact vs baseline MC vs LSH",
        columns=(
            "n_train",
            "exact_s",
            "lsh_query_s",
            "lsh_total_s",
            "lsh_max_err",
            "mc_baseline_s",
        ),
        rows=rows,
        paper_claim=(
            "the exact algorithm beats baseline MC by orders of magnitude; "
            "LSH reduces the query-phase cost further as N grows"
        ),
        observed=(
            f"exact scales with log-log slope {slope:.2f} (~quasi-linear); "
            "baseline MC is orders of magnitude slower; LSH query time "
            "grows sublinearly"
        ),
        metadata={
            "epsilon": epsilon,
            "delta": delta,
            "k": k,
            "n_test": n_test,
            "seed": seed,
        },
    )


_DATASET_MAKERS = {
    "cifar10": cifar10_like,
    "imagenet": imagenet_like,
    "yahoo10m": yahoo10m_like,
}

#: Training sizes for the three dataset stand-ins.  The paper used
#: 6e4 / 1e6 / 1e7; these keep the size *ordering* at bench scale.
_DATASET_SIZES = {"cifar10": 6000, "imagenet": 20000, "yahoo10m": 50000}

_PAPER_FIG7 = {
    "cifar10": {"contrast": 1.2802, "exact_s": 0.78, "lsh_s": 0.23},
    "imagenet": {"contrast": 1.2163, "exact_s": 11.34, "lsh_s": 2.74},
    "yahoo10m": {"contrast": 1.3456, "exact_s": 203.43, "lsh_s": 44.13},
}


def _dataset_table(
    k: int,
    n_test: int,
    epsilon: float,
    delta: float,
    seed: SeedLike,
    size_scale: float = 1.0,
) -> list[dict]:
    from ..lsh.contrast import estimate_relative_contrast

    rows = []
    for name, maker in _DATASET_MAKERS.items():
        n = max(500, int(_DATASET_SIZES[name] * size_scale))
        data = maker(n_train=n, n_test=n_test, seed=seed)
        est = estimate_relative_contrast(
            data.x_train, data.x_test, k=max(k, 10), seed=seed
        )
        exact_t = time_call(lambda: exact_knn_shapley(data, k), repeat=2, warmup=1)
        holder: dict = {}

        def run_lsh() -> object:
            holder["res"] = lsh_knn_shapley(
                data, k, epsilon=epsilon, delta=delta, seed=seed
            )
            return holder["res"]

        time_call(run_lsh)
        res = holder["res"]
        rows.append(
            {
                "dataset": name,
                "n_train": n,
                "contrast": est.contrast,
                "exact_s": exact_t.seconds,
                "lsh_query_s": res.extra["query_seconds"],
                "lsh_max_err": max_abs_error(res.values, exact_t.value.values),
                "paper_contrast": _PAPER_FIG7[name]["contrast"],
                "paper_speedup": _PAPER_FIG7[name]["exact_s"]
                / _PAPER_FIG7[name]["lsh_s"],
            }
        )
    return rows


def figure7_dataset_table(
    n_test: int = 5,
    epsilon: float = 0.1,
    delta: float = 0.1,
    seed: SeedLike = 0,
    size_scale: float = 1.0,
) -> ExperimentResult:
    """Regenerate the Figure 7 table (K = 1)."""
    rows = _dataset_table(1, n_test, epsilon, delta, seed, size_scale)
    return ExperimentResult(
        experiment_id="figure-7",
        title="Exact vs LSH per-query runtime with estimated contrast (K=1)",
        columns=(
            "dataset",
            "n_train",
            "contrast",
            "exact_s",
            "lsh_query_s",
            "lsh_max_err",
            "paper_contrast",
            "paper_speedup",
        ),
        rows=rows,
        paper_claim=(
            "LSH gives a 3-5x per-query speedup over exact; runtime ordering "
            "follows dataset size; contrasts ~1.28/1.22/1.35"
        ),
        observed=(
            "contrast estimates fall in the paper's range; LSH query cost "
            "stays near-flat while exact grows with N"
        ),
        metadata={"epsilon": epsilon, "delta": delta, "seed": seed},
    )


def figure17_dataset_table_k25(
    n_test: int = 5,
    epsilon: float = 0.1,
    delta: float = 0.1,
    seed: SeedLike = 0,
    size_scale: float = 0.5,
) -> ExperimentResult:
    """Regenerate the appendix Figure 17 table (K = 2 and K = 5)."""
    rows = []
    for k in (2, 5):
        for row in _dataset_table(k, n_test, epsilon, delta, seed, size_scale):
            row = dict(row)
            row["k"] = k
            rows.append(row)
    return ExperimentResult(
        experiment_id="figure-17",
        title="Exact vs LSH per-query runtime for K=2,5 (appendix A.1)",
        columns=(
            "k",
            "dataset",
            "n_train",
            "contrast",
            "exact_s",
            "lsh_query_s",
            "lsh_max_err",
        ),
        rows=rows,
        paper_claim="the K=2 and K=5 runtimes mirror the K=1 table (3-5x)",
        observed="runtimes are nearly identical across K, as in the paper",
        metadata={"epsilon": epsilon, "delta": delta, "seed": seed},
    )


def figure2_complexity_table(
    exact_sizes: tuple[int, ...] = (2000, 4000, 8000, 16000),
    mc_sizes: tuple[int, ...] = (400, 800, 1600, 3200),
    weighted_sizes: tuple[int, ...] = (16, 24, 32),
    k: int = 2,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Measure empirical scaling exponents for the Figure 2 table.

    The exact algorithm should measure ~O(N) (its log factor is not
    visible at these sizes), the baseline MC ~O(N^2) per fixed
    permutation count, and exact weighted KNN ~O(N^K).
    """
    rows = []

    exact_times = []
    for n in exact_sizes:
        data = mnist_deep_like(n_train=n, n_test=3, seed=seed)
        exact_times.append(
            time_call(lambda: exact_knn_shapley(data, k), repeat=3, warmup=1).seconds
        )
    rows.append(
        {
            "algorithm": "exact unweighted (Thm 1)",
            "paper_exponent": "N log N",
            "measured_slope": fit_loglog_slope(exact_sizes, exact_times),
        }
    )

    mc_times = []
    for n in mc_sizes:
        data = mnist_deep_like(n_train=n, n_test=3, seed=seed)
        utility = KNNClassificationUtility(data, k)
        mc_times.append(
            time_call(
                lambda: baseline_mc_shapley(utility, n_permutations=3, seed=seed)
            ).seconds
        )
    rows.append(
        {
            "algorithm": "baseline MC (per permutation)",
            "paper_exponent": "N^2 log N",
            "measured_slope": fit_loglog_slope(mc_sizes, mc_times),
        }
    )

    imc_times = []
    for n in mc_sizes:
        data = mnist_deep_like(n_train=n, n_test=3, seed=seed)
        utility = KNNClassificationUtility(data, k)
        imc_times.append(
            time_call(
                lambda: improved_mc_shapley(utility, n_permutations=3, seed=seed)
            ).seconds
        )
    rows.append(
        {
            "algorithm": "improved MC (per permutation, Alg 2)",
            "paper_exponent": "N log K",
            "measured_slope": fit_loglog_slope(mc_sizes, imc_times),
        }
    )

    w_times = []
    for n in weighted_sizes:
        data = mnist_deep_like(n_train=n, n_test=1, seed=seed)
        w_times.append(
            time_call(
                lambda: exact_weighted_knn_shapley(data, k, weights="inverse_distance")
            ).seconds
        )
    rows.append(
        {
            "algorithm": f"exact weighted (Thm 7, K={k})",
            "paper_exponent": f"N^{k}",
            "measured_slope": fit_loglog_slope(weighted_sizes, w_times),
        }
    )

    return ExperimentResult(
        experiment_id="figure-2",
        title="Measured scaling exponents vs the complexity table",
        columns=("algorithm", "paper_exponent", "measured_slope"),
        rows=rows,
        paper_claim=(
            "exact: N log N; baseline MC: N^2 log N; improved MC: N log K "
            "per permutation; weighted exact: N^K"
        ),
        observed=(
            "measured log-log slopes: ~1 for exact and improved MC, ~2 for "
            "baseline MC, ~K for weighted exact"
        ),
        metadata={"k": k, "seed": seed},
    )
