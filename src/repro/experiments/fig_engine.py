"""Engine throughput: the execution layer vs the single-shot core path.

Not a figure from the paper — this experiment measures the system
contribution of :mod:`repro.engine` on the paper's headline workload
(exact Theorem 1 valuation at retrieval scale):

* **single-shot**: :func:`repro.core.exact.exact_knn_shapley`, the
  reference implementation — one full ``(n_test, n_train)`` ranking,
  one pass, stable mergesort.
* **engine**: :class:`repro.engine.ValuationEngine` — chunked queries,
  the introsort-with-tie-repair rank kernel, parallel chunk execution,
  partial-sum merging (exact by additivity, eq 8).
* **engine (cached)**: a repeat of the same request, answered from the
  rank cache without re-sorting — the serving scenario of Section 3.2.

Values agree to ~1e-15; the comparison is purely wall-clock.

:func:`weighted_engine` measures the same story for the weighted
method (Theorem 7), which PR 3 routed through the engine's kernel
registry: the single-shot combinatorial path vs the engine's
``method="weighted"`` (kernel fast path at K=1, cached rankings with
distances on repeats).
"""

from __future__ import annotations


from ..core.exact import exact_knn_shapley
from ..core.weighted import exact_weighted_knn_shapley
from ..datasets.synthetic import gaussian_blobs
from ..engine import ValuationEngine
from ..metrics.errors import max_abs_error
from ..metrics.timing import time_call
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = ["engine_throughput", "weighted_engine"]


def engine_throughput(
    sizes: tuple[int, ...] = (5000, 20000),
    n_test: int = 128,
    n_features: int = 32,
    k: int = 5,
    backend: str = "brute",
    n_workers: int | None = None,
    repeat: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Compare engine exact valuation against the single-shot path.

    Parameters
    ----------
    sizes:
        Training-set sizes to sweep.
    n_test:
        Query batch size per valuation request.
    n_features, k, seed:
        Workload shape.
    backend:
        Exact engine backend to benchmark (``"brute"`` or ``"blocked"``).
    n_workers:
        Engine thread count (default: the engine's own default).
    repeat:
        Timed repetitions; best run is reported.
    """
    rows = []
    for n in sizes:
        data = gaussian_blobs(
            n_train=n, n_test=n_test, n_features=n_features, seed=seed
        )
        single = time_call(
            lambda: exact_knn_shapley(data, k), repeat=repeat, warmup=1
        )
        engine = ValuationEngine(
            data.x_train,
            data.y_train,
            k,
            backend=backend,
            n_workers=n_workers,
        )
        holder: dict = {}

        def run_engine():
            # a fresh cache-free engine per run: measure compute, not memoization
            eng = ValuationEngine(
                data.x_train,
                data.y_train,
                k,
                backend=backend,
                n_workers=n_workers,
                cache=False,
            )
            holder["res"] = eng.value(data.x_test, data.y_test)
            return holder["res"]

        engine_t = time_call(run_engine, repeat=repeat, warmup=1)
        # warm the cache, then measure a repeated request
        engine.value(data.x_test, data.y_test)
        cached_t = time_call(
            lambda: engine.value(data.x_test, data.y_test), repeat=repeat
        )
        err = max_abs_error(holder["res"].values, single.value.values)
        rows.append(
            {
                "n_train": n,
                "single_shot_s": single.seconds,
                "engine_s": engine_t.seconds,
                "engine_cached_s": cached_t.seconds,
                "speedup": single.seconds / max(engine_t.seconds, 1e-12),
                "cached_speedup": single.seconds / max(cached_t.seconds, 1e-12),
                "n_chunks": holder["res"].extra["n_chunks"],
                "max_err": err,
            }
        )
    return ExperimentResult(
        experiment_id="engine-throughput",
        title="Exact valuation: engine (chunked+parallel+cached) vs single-shot",
        columns=(
            "n_train",
            "single_shot_s",
            "engine_s",
            "engine_cached_s",
            "speedup",
            "cached_speedup",
            "n_chunks",
            "max_err",
        ),
        rows=rows,
        paper_claim=(
            "Section 3.2 motivates serving deployments; the valuation cost "
            "is dominated by the per-query sort"
        ),
        observed=(
            "chunked engine execution beats the single-shot path wall-clock "
            "at every size; cached repeats skip the sort entirely"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "backend": backend,
            "seed": seed,
        },
    )


def weighted_engine(
    n_single: int = 300,
    n_cached: int = 20000,
    n_test: int = 4,
    n_features: int = 32,
    k: int = 1,
    repeat: int = 1,
    cached_repeat: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Weighted valuation through the engine vs the single-shot path.

    Two workloads, because the two comparisons stress different layers:

    * at ``n_single`` (small enough for the O(N^K) single-shot
      reference) the engine's ``method="weighted"`` — the kernel's
      vectorized K=1 fast path — is compared against
      :func:`repro.core.weighted.exact_weighted_knn_shapley`;
    * at ``n_cached`` (serving scale, far beyond the single-shot path)
      a repeated engine request measures the ranking+distances cache:
      the second call skips the distance pass and the sort entirely.

    Values agree to 1e-12 (asserted via ``max_err``); the comparison is
    wall-clock.
    """
    data = gaussian_blobs(
        n_train=n_single, n_test=n_test, n_features=n_features, seed=seed
    )
    single = time_call(
        lambda: exact_weighted_knn_shapley(data, k),
        repeat=repeat,
        warmup=0,
    )
    holder: dict = {}

    def run_engine():
        eng = ValuationEngine(data.x_train, data.y_train, k, cache=False)
        holder["res"] = eng.value(data.x_test, data.y_test, method="weighted")
        return holder["res"]

    # the engine side is orders of magnitude faster, hence noisier:
    # best-of-`cached_repeat` keeps the gated ratio stable
    engine_t = time_call(run_engine, repeat=cached_repeat, warmup=1)
    err = max_abs_error(holder["res"].values, single.value.values)

    big = gaussian_blobs(
        n_train=n_cached, n_test=n_test, n_features=n_features, seed=seed
    )
    engine = ValuationEngine(big.x_train, big.y_train, k)
    cold_t = time_call(
        lambda: ValuationEngine(big.x_train, big.y_train, k, cache=False).value(
            big.x_test, big.y_test, method="weighted"
        ),
        repeat=cached_repeat,
        warmup=0,
    )
    engine.value(big.x_test, big.y_test, method="weighted")  # warm the cache
    cached_t = time_call(
        lambda: engine.value(big.x_test, big.y_test, method="weighted"),
        repeat=cached_repeat,
    )
    rows = [
        {
            "n_train": n_single,
            "single_shot_s": single.seconds,
            "engine_s": engine_t.seconds,
            "speedup": single.seconds / max(engine_t.seconds, 1e-12),
            "max_err": err,
        },
        {
            "n_train": n_cached,
            "engine_cold_s": cold_t.seconds,
            "engine_cached_s": cached_t.seconds,
            "cached_speedup": cold_t.seconds / max(cached_t.seconds, 1e-12),
        },
    ]
    return ExperimentResult(
        experiment_id="weighted-engine",
        title="Weighted valuation: engine (kernel registry) vs single-shot",
        columns=(
            "n_train",
            "single_shot_s",
            "engine_s",
            "speedup",
            "engine_cold_s",
            "engine_cached_s",
            "cached_speedup",
            "max_err",
        ),
        rows=rows,
        paper_claim=(
            "Theorem 7 computes weighted KNN Shapley values in O(N^K) "
            "utility evaluations"
        ),
        observed=(
            "routing the weighted method through the engine's kernel "
            "registry gives it the K=1 fast path plus the rank cache; "
            "repeat requests at serving scale skip the distance pass"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "seed": seed,
        },
    )
