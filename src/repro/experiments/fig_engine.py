"""Engine throughput: the execution layer vs the single-shot core path.

Not a figure from the paper — this experiment measures the system
contribution of :mod:`repro.engine` on the paper's headline workload
(exact Theorem 1 valuation at retrieval scale):

* **single-shot**: :func:`repro.core.exact.exact_knn_shapley`, the
  reference implementation — one full ``(n_test, n_train)`` ranking,
  one pass, stable mergesort.
* **engine**: :class:`repro.engine.ValuationEngine` — chunked queries,
  the introsort-with-tie-repair rank kernel, parallel chunk execution,
  partial-sum merging (exact by additivity, eq 8).
* **engine (cached)**: a repeat of the same request, answered from the
  rank cache without re-sorting — the serving scenario of Section 3.2.

Values agree to ~1e-15; the comparison is purely wall-clock.

:func:`weighted_engine` measures the same story for the weighted
method (Theorem 7), which PR 3 routed through the engine's kernel
registry: the single-shot combinatorial path vs the engine's
``method="weighted"`` (kernel fast path at K=1, cached rankings with
distances on repeats).

:func:`weighted_fast_paths` measures the K >= 2 weighted fast-path
stack: the O(N·K^2) piecewise counting path (rank-only weights) and
the batched configuration engine against the per-coalition reference
recursion — the two gated ratios of ``BENCH_engine.json``'s
``weighted_k2_*`` metrics.
"""

from __future__ import annotations


from ..core.exact import exact_knn_shapley
from ..core.kernels import RankPlan, get_kernel
from ..core.weighted import exact_weighted_knn_shapley
from ..datasets.synthetic import gaussian_blobs
from ..engine import ValuationEngine
from ..knn.search import argsort_by_distance
from ..metrics.errors import max_abs_error
from ..metrics.timing import time_call
from ..rng import SeedLike
from .reporting import ExperimentResult

__all__ = ["engine_throughput", "weighted_engine", "weighted_fast_paths"]


def engine_throughput(
    sizes: tuple[int, ...] = (5000, 20000),
    n_test: int = 128,
    n_features: int = 32,
    k: int = 5,
    backend: str = "brute",
    n_workers: int | None = None,
    repeat: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Compare engine exact valuation against the single-shot path.

    Parameters
    ----------
    sizes:
        Training-set sizes to sweep.
    n_test:
        Query batch size per valuation request.
    n_features, k, seed:
        Workload shape.
    backend:
        Exact engine backend to benchmark (``"brute"`` or ``"blocked"``).
    n_workers:
        Engine thread count (default: the engine's own default).
    repeat:
        Timed repetitions; best run is reported.
    """
    rows = []
    for n in sizes:
        data = gaussian_blobs(
            n_train=n, n_test=n_test, n_features=n_features, seed=seed
        )
        single = time_call(
            lambda: exact_knn_shapley(data, k), repeat=repeat, warmup=1
        )
        engine = ValuationEngine(
            data.x_train,
            data.y_train,
            k,
            backend=backend,
            n_workers=n_workers,
        )
        holder: dict = {}

        def run_engine():
            # a fresh cache-free engine per run: measure compute, not memoization
            eng = ValuationEngine(
                data.x_train,
                data.y_train,
                k,
                backend=backend,
                n_workers=n_workers,
                cache=False,
            )
            holder["res"] = eng.value(data.x_test, data.y_test)
            return holder["res"]

        engine_t = time_call(run_engine, repeat=repeat, warmup=1)
        # warm the cache, then measure a repeated request
        engine.value(data.x_test, data.y_test)
        cached_t = time_call(
            lambda: engine.value(data.x_test, data.y_test), repeat=repeat
        )
        err = max_abs_error(holder["res"].values, single.value.values)
        rows.append(
            {
                "n_train": n,
                "single_shot_s": single.seconds,
                "engine_s": engine_t.seconds,
                "engine_cached_s": cached_t.seconds,
                "speedup": single.seconds / max(engine_t.seconds, 1e-12),
                "cached_speedup": single.seconds / max(cached_t.seconds, 1e-12),
                "n_chunks": holder["res"].extra["n_chunks"],
                "max_err": err,
            }
        )
    return ExperimentResult(
        experiment_id="engine-throughput",
        title="Exact valuation: engine (chunked+parallel+cached) vs single-shot",
        columns=(
            "n_train",
            "single_shot_s",
            "engine_s",
            "engine_cached_s",
            "speedup",
            "cached_speedup",
            "n_chunks",
            "max_err",
        ),
        rows=rows,
        paper_claim=(
            "Section 3.2 motivates serving deployments; the valuation cost "
            "is dominated by the per-query sort"
        ),
        observed=(
            "chunked engine execution beats the single-shot path wall-clock "
            "at every size; cached repeats skip the sort entirely"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "backend": backend,
            "seed": seed,
        },
    )


def weighted_engine(
    n_single: int = 300,
    n_cached: int = 20000,
    n_test: int = 4,
    n_features: int = 32,
    k: int = 1,
    repeat: int = 1,
    cached_repeat: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Weighted valuation through the engine vs the single-shot path.

    Two workloads, because the two comparisons stress different layers:

    * at ``n_single`` (small enough for the O(N^K) single-shot
      reference) the engine's ``method="weighted"`` — the kernel's
      vectorized K=1 fast path — is compared against
      :func:`repro.core.weighted.exact_weighted_knn_shapley`;
    * at ``n_cached`` (serving scale, far beyond the single-shot path)
      a repeated engine request measures the ranking+distances cache:
      the second call skips the distance pass and the sort entirely.

    Values agree to 1e-12 (asserted via ``max_err``); the comparison is
    wall-clock.
    """
    data = gaussian_blobs(
        n_train=n_single, n_test=n_test, n_features=n_features, seed=seed
    )
    single = time_call(
        lambda: exact_weighted_knn_shapley(data, k),
        repeat=repeat,
        warmup=0,
    )
    holder: dict = {}

    def run_engine():
        eng = ValuationEngine(data.x_train, data.y_train, k, cache=False)
        holder["res"] = eng.value(data.x_test, data.y_test, method="weighted")
        return holder["res"]

    # the engine side is orders of magnitude faster, hence noisier:
    # best-of-`cached_repeat` keeps the gated ratio stable
    engine_t = time_call(run_engine, repeat=cached_repeat, warmup=1)
    err = max_abs_error(holder["res"].values, single.value.values)

    big = gaussian_blobs(
        n_train=n_cached, n_test=n_test, n_features=n_features, seed=seed
    )
    engine = ValuationEngine(big.x_train, big.y_train, k)
    cold_t = time_call(
        lambda: ValuationEngine(big.x_train, big.y_train, k, cache=False).value(
            big.x_test, big.y_test, method="weighted"
        ),
        repeat=cached_repeat,
        warmup=0,
    )
    engine.value(big.x_test, big.y_test, method="weighted")  # warm the cache
    cached_t = time_call(
        lambda: engine.value(big.x_test, big.y_test, method="weighted"),
        repeat=cached_repeat,
    )
    rows = [
        {
            "n_train": n_single,
            "single_shot_s": single.seconds,
            "engine_s": engine_t.seconds,
            "speedup": single.seconds / max(engine_t.seconds, 1e-12),
            "max_err": err,
        },
        {
            "n_train": n_cached,
            "engine_cold_s": cold_t.seconds,
            "engine_cached_s": cached_t.seconds,
            "cached_speedup": cold_t.seconds / max(cached_t.seconds, 1e-12),
        },
    ]
    return ExperimentResult(
        experiment_id="weighted-engine",
        title="Weighted valuation: engine (kernel registry) vs single-shot",
        columns=(
            "n_train",
            "single_shot_s",
            "engine_s",
            "speedup",
            "engine_cold_s",
            "engine_cached_s",
            "cached_speedup",
            "max_err",
        ),
        rows=rows,
        paper_claim=(
            "Theorem 7 computes weighted KNN Shapley values in O(N^K) "
            "utility evaluations"
        ),
        observed=(
            "routing the weighted method through the engine's kernel "
            "registry gives it the K=1 fast path plus the rank cache; "
            "repeat requests at serving scale skip the distance pass"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "seed": seed,
        },
    )


def weighted_fast_paths(
    n_reference: int = 300,
    n_piecewise: int = 2000,
    n_test: int = 2,
    n_features: int = 32,
    k: int = 2,
    rank_only_weights: str = "rank",
    distance_weights: str = "inverse_distance",
    repeat: int = 1,
    fast_repeat: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """The K >= 2 weighted fast paths vs the reference recursion.

    Three timed comparisons over prebuilt :class:`RankPlan` s (ranking
    cost excluded — the paths differ only in how they evaluate the
    Theorem 7 sums):

    * **reference** at ``n_reference`` with a rank-only weight function
      and with a distance-based one — the O(N^K) per-coalition
      recursion, timed as the denominator of both gated ratios;
    * **vectorized** at the same ``n_reference`` / ``k`` with the
      distance-based weights — the batched configuration engine,
      expected >= 10x faster at equal N, K;
    * **piecewise** at ``n_piecewise >> n_reference`` with the
      rank-only weights — the O(N·K^2) counting path, expected to
      value the much larger problem in less time than the reference
      needs for the small one.

    ``max_err`` is the worst absolute deviation of either fast path
    from the reference at ``n_reference`` (both must stay <= 1e-12;
    the benchmark gate hard-checks it).
    """
    kernel = get_kernel("weighted")
    data = gaussian_blobs(
        n_train=n_reference, n_test=n_test, n_features=n_features, seed=seed
    )
    order, dist = argsort_by_distance(data.x_test, data.x_train)
    plan = RankPlan.from_order(
        order, data.y_train, data.y_test, distances=dist
    )
    ref_rank = time_call(
        lambda: kernel.values_from_plan(
            plan, k, weights=rank_only_weights, mode="reference"
        ),
        repeat=repeat,
    )
    ref_dist = time_call(
        lambda: kernel.values_from_plan(
            plan, k, weights=distance_weights, mode="reference"
        ),
        repeat=repeat,
    )
    vectorized = time_call(
        lambda: kernel.values_from_plan(
            plan, k, weights=distance_weights, mode="vectorized"
        ),
        repeat=fast_repeat,
        warmup=1,
    )
    piecewise_small = kernel.values_from_plan(
        plan, k, weights=rank_only_weights, mode="piecewise"
    )
    max_err = max(
        max_abs_error(piecewise_small, ref_rank.value),
        max_abs_error(vectorized.value, ref_dist.value),
    )

    big = gaussian_blobs(
        n_train=n_piecewise, n_test=n_test, n_features=n_features, seed=seed
    )
    big_order, big_dist = argsort_by_distance(big.x_test, big.x_train)
    big_plan = RankPlan.from_order(
        big_order, big.y_train, big.y_test, distances=big_dist
    )
    piecewise = time_call(
        lambda: kernel.values_from_plan(
            big_plan, k, weights=rank_only_weights, mode="piecewise"
        ),
        repeat=fast_repeat,
        warmup=1,
    )
    rows = [
        {
            "k": k,
            "n_reference": n_reference,
            "n_piecewise": n_piecewise,
            "reference_rank_s": ref_rank.seconds,
            "reference_distance_s": ref_dist.seconds,
            "vectorized_s": vectorized.seconds,
            "piecewise_s": piecewise.seconds,
            # the piecewise ratio crosses problem sizes on purpose: the
            # acceptance bar is "N=2000 piecewise under N=300 reference"
            "piecewise_speedup": ref_rank.seconds
            / max(piecewise.seconds, 1e-12),
            "vectorized_speedup": ref_dist.seconds
            / max(vectorized.seconds, 1e-12),
            "max_err": max_err,
        }
    ]
    return ExperimentResult(
        experiment_id="weighted-fast-paths",
        title=(
            "Weighted K>=2: piecewise counting and the vectorized "
            "configuration engine vs the reference recursion"
        ),
        columns=(
            "k",
            "n_reference",
            "n_piecewise",
            "reference_rank_s",
            "reference_distance_s",
            "vectorized_s",
            "piecewise_s",
            "piecewise_speedup",
            "vectorized_speedup",
            "max_err",
        ),
        rows=rows,
        paper_claim=(
            "Theorem 7 needs O(N^K) utility evaluations; Appendix F's "
            "piecewise framework turns the adjacent-rank difference "
            "into a counting problem"
        ),
        observed=(
            "rank-only weights take the closed-form O(N*K^2) counting "
            "path (values N >> the reference's N in less wall-clock); "
            "distance-based weights take the batched configuration "
            "engine, >= 10x over the per-coalition recursion at equal "
            "N, K — both within 1e-12 of the reference"
        ),
        metadata={
            "n_test": n_test,
            "n_features": n_features,
            "k": k,
            "rank_only_weights": rank_only_weights,
            "distance_weights": distance_weights,
            "seed": seed,
        },
    )
