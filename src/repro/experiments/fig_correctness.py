"""Figure 5 — Monte Carlo estimates converge to the exact Shapley value.

The paper's first experimental check: on a 1000-point MNIST subsample
with 100 test points, the baseline MC estimate of every training
point's value converges to the output of the exact algorithm as the
permutation count grows.  We regenerate the convergence series (max
absolute error and Pearson correlation against the exact values as a
function of permutations).
"""

from __future__ import annotations

from ..core.exact import exact_knn_shapley
from ..core.montecarlo import improved_mc_shapley
from ..datasets.embeddings import mnist_deep_like
from ..metrics.errors import max_abs_error, pearson_correlation
from ..rng import SeedLike
from ..utility.knn_utility import KNNClassificationUtility
from .reporting import ExperimentResult

__all__ = ["figure5_mc_convergence"]


def figure5_mc_convergence(
    n_train: int = 1000,
    n_test: int = 20,
    k: int = 1,
    permutation_grid: tuple[int, ...] = (10, 50, 100, 500, 2000),
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Regenerate Figure 5: MC estimates vs the exact values.

    Parameters mirror the paper's setup at reduced scale (the paper
    used 100 test points; the default here uses 20 so the experiment
    completes in seconds — pass ``n_test=100`` for the full setting).
    """
    data = mnist_deep_like(n_train=n_train, n_test=n_test, seed=seed)
    exact = exact_knn_shapley(data, k)
    utility = KNNClassificationUtility(data, k)
    rows = []
    for n_perm in permutation_grid:
        mc = improved_mc_shapley(utility, n_permutations=n_perm, seed=seed)
        rows.append(
            {
                "permutations": n_perm,
                "max_abs_error": max_abs_error(mc.values, exact.values),
                "pearson_r": pearson_correlation(mc.values, exact.values),
            }
        )
    final_err = rows[-1]["max_abs_error"]
    return ExperimentResult(
        experiment_id="figure-5",
        title="MC estimate converges to the exact SV",
        columns=("permutations", "max_abs_error", "pearson_r"),
        rows=rows,
        paper_claim=(
            "the MC estimate of every training point's SV converges to "
            "the exact algorithm's output"
        ),
        observed=(
            f"max error falls monotonically to {final_err:.2e} at "
            f"{permutation_grid[-1]} permutations; correlation approaches 1"
        ),
        metadata={"n_train": n_train, "n_test": n_test, "k": k, "seed": seed},
    )
