"""Monitoring subsystem: overhead and recovery acceptance gates.

Two bars from the monitoring PR's acceptance criteria:

* leaving telemetry + an idle maintenance scheduler attached must cost
  at most 5% on the steady-state LSH serving path;
* after an injected distribution shift (full cluster migration at
  constant ``n``), one background maintenance cycle must re-tune the
  index to a recall proxy within 2% of a freshly tuned control — with
  zero warnings and at least one drift-signal-driven re-tune.

The experiment itself runs the migration under
``warnings.simplefilter("error")``, so any resurrection of the legacy
``RuntimeWarning`` refit path fails this benchmark outright.
"""

from repro.experiments import monitor_maintenance
from repro.experiments.reporting import format_result


def test_monitor_overhead_and_drift_recovery(once):
    result = once(lambda: monitor_maintenance())
    print()
    print(format_result(result))
    overhead, recovery = result.rows

    # steady state: monitoring is leave-on-able
    assert overhead["monitored_s"] <= 1.05 * overhead["plain_s"], (
        f"monitoring overhead {overhead['overhead_ratio']:.3f}x exceeds "
        "the 5% budget on the serving path"
    )
    # a stable workload must not trigger maintenance actions
    assert overhead["idle_actions"] == 0

    # drift: the background re-tune restores recall to fresh-tune level
    assert recovery["retunes"] >= 1, "no background re-tune happened"
    assert recovery["n_signals"] >= 1, "maintenance ran without a signal"
    assert recovery["recall_fresh"] > 0.8, "the fresh control is unhealthy"
    assert recovery["recall_after"] >= recovery["recall_fresh"] - 0.02, (
        f"post-maintenance recall {recovery['recall_after']:.3f} not within "
        f"2% of a freshly tuned index ({recovery['recall_fresh']:.3f})"
    )
    assert recovery["recall_after"] >= recovery["recall_degraded"] + 0.2, (
        "the injected shift did not degrade-and-recover as designed"
    )
