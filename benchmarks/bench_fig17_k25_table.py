"""Figure 17 (Appendix A.1): the Figure 7 runtime table at K = 2 and 5.

The paper's point: the exact-vs-LSH comparison is insensitive to K in
this range.
"""

from repro.experiments import figure17_dataset_table_k25
from repro.experiments.reporting import format_result


def test_fig17_k25_table(once):
    result = once(
        lambda: figure17_dataset_table_k25(
            n_test=5, epsilon=0.1, delta=0.1, seed=0, size_scale=0.15
        )
    )
    print()
    print(format_result(result))
    # runtimes for K=2 and K=5 are close for every dataset (the K*
    # that governs retrieval is 1/epsilon = 10 in both cases)
    by_key = {(r["k"], r["dataset"]): r for r in result.rows}
    for dataset in ("cifar10", "imagenet", "yahoo10m"):
        a = by_key[(2, dataset)]["exact_s"]
        b = by_key[(5, dataset)]["exact_s"]
        assert abs(a - b) <= 0.5 * max(a, b) + 0.05
    for r in result.rows:
        assert r["lsh_max_err"] <= 0.1 + 1e-9
