"""Figure 12: weighted KNN — exact (Theorem 7) vs improved MC runtime.

The exact algorithm's runtime grows polynomially in N (degree ~K) and
exponentially in K; the improved MC estimator's runtime barely moves.
"""

from repro.experiments import figure12_weighted_runtime
from repro.experiments.reporting import format_result


def test_fig12_weighted_runtime(once):
    result = once(
        lambda: figure12_weighted_runtime(
            sizes=(16, 24, 32, 40),
            k_grid=(1, 2, 3),
            fixed_k=3,
            fixed_n=24,
            n_test=1,
            mc_permutations=50,
            seed=0,
        )
    )
    print()
    print(format_result(result))
    vary_n = [r for r in result.rows if r["sweep"] == "vary_n"]
    vary_k = [r for r in result.rows if r["sweep"] == "vary_k"]
    # exact runtime explodes with N at fixed K...
    assert vary_n[-1]["exact_s"] > 3 * vary_n[0]["exact_s"]
    # ...and with K at fixed N
    assert vary_k[-1]["exact_s"] > 3 * vary_k[0]["exact_s"]
    # MC runtime moves far less across the same sweeps
    mc_growth_n = vary_n[-1]["mc_s"] / max(vary_n[0]["mc_s"], 1e-9)
    exact_growth_n = vary_n[-1]["exact_s"] / max(vary_n[0]["exact_s"], 1e-9)
    assert mc_growth_n < exact_growth_n
    mc_growth_k = vary_k[-1]["mc_s"] / max(vary_k[0]["mc_s"], 1e-9)
    exact_growth_k = vary_k[-1]["exact_s"] / max(vary_k[0]["exact_s"], 1e-9)
    assert mc_growth_k < exact_growth_k
