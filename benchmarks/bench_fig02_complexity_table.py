"""Figure 2 (complexity table): measured scaling exponents.

Verifies the asymptotic table empirically: the exact algorithm scales
quasi-linearly, the baseline MC quadratically (per permutation), the
improved MC linearly, and exact weighted KNN polynomially with degree
~K.
"""

from repro.experiments import figure2_complexity_table
from repro.experiments.reporting import format_result


def test_fig02_complexity_table(once):
    result = once(
        lambda: figure2_complexity_table(
            exact_sizes=(2000, 4000, 8000, 16000),
            mc_sizes=(400, 800, 1600, 3200),
            weighted_sizes=(16, 24, 32),
            k=2,
            seed=0,
        )
    )
    print()
    print(format_result(result))
    slopes = {r["algorithm"]: r["measured_slope"] for r in result.rows}
    exact_slope = slopes["exact unweighted (Thm 1)"]
    baseline_slope = slopes["baseline MC (per permutation)"]
    improved_slope = slopes["improved MC (per permutation, Alg 2)"]
    weighted_slope = slopes["exact weighted (Thm 7, K=2)"]
    # shape: exact ~linear, baseline super-linear (quadratic term
    # emerging), improved MC ~linear, weighted ~N^K
    assert exact_slope < 1.6
    assert baseline_slope > exact_slope + 0.3
    assert baseline_slope > improved_slope + 0.2
    assert improved_slope < 1.5
    assert weighted_slope > 1.5
