"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures through
:mod:`repro.experiments` and prints the paper-vs-measured report.  The
``bench_*.py`` naming keeps these out of the default unit-test run;
pytest collects explicitly named files regardless, so run

    pytest benchmarks/bench_*.py -s

to see the tables inline; timings land in the pytest-benchmark summary.
Scales are reduced relative to the paper (see DESIGN.md) so the whole
suite completes in minutes; every experiment function accepts size
parameters for full-scale runs.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer.

    The experiments are internally repeated/averaged where that
    matters; re-running whole experiments many times would multiply the
    suite runtime without improving the measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture()
def once(benchmark):
    """Fixture alias for :func:`run_once`."""

    def _run(fn):
        return run_once(benchmark, fn)

    return _run
