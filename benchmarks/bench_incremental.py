"""Incremental valuation vs full recompute under single-point churn.

The acceptance bar for the incremental subsystem: at N = 20k training
points on one core, a single-point add or remove (repair + read of the
updated values) must beat re-running the reference single-shot
valuation (`exact_knn_shapley`) on the mutated dataset by >= 5x, while
agreeing to <= 1e-12 — and an add followed by the matching remove must
restore the canonical Shapley vector bit-for-bit.  The engine path
(fresh `ValuationEngine` per event, the fastest full recompute in the
repo) is reported alongside as the stronger baseline.
"""

from repro.experiments import incremental_churn
from repro.experiments.reporting import format_result


def test_incremental_beats_full_recompute(once):
    result = once(
        lambda: incremental_churn(
            sizes=(5000, 20000),
            n_test=128,
            n_features=128,
            k=5,
            repeat=5,
            seed=0,
        )
    )
    print()
    print(format_result(result))
    for row in result.rows:
        # exactness: incremental values match the full recompute
        assert row["max_err"] < 1e-12
        # add-then-remove restores the canonical vector bit-for-bit
        assert row["roundtrip_exact"]
    big = [r for r in result.rows if r["n_train"] >= 20000]
    assert big, "sweep must include an N >= 20k point"
    for row in big:
        # the headline: single-point churn beats the single-shot full
        # recompute >= 5x ...
        assert row["add_speedup"] >= 5.0, (
            f"add repair {row['add_s']:.3f}s not 5x faster than single-shot "
            f"{row['single_shot_s']:.3f}s at N={row['n_train']}"
        )
        assert row["remove_speedup"] >= 5.0, (
            f"remove repair {row['remove_s']:.3f}s not 5x faster than "
            f"single-shot {row['single_shot_s']:.3f}s at N={row['n_train']}"
        )
        # ... and clearly beats even a fresh chunked engine per event
        assert row["add_vs_engine"] > 1.5
