"""Emit (or check) the machine-readable engine benchmark, BENCH_engine.json.

The CI benchmark-regression gate runs this twice:

    python benchmarks/bench_to_json.py --out BENCH_engine.json
    python benchmarks/bench_to_json.py --check benchmarks/BENCH_engine.json \\
        BENCH_engine.json --tolerance 0.30

The first command measures a small fixed workload and writes a JSON
report; the second compares a freshly measured candidate against the
committed baseline and exits non-zero when any gated metric regressed
by more than the tolerance.

Every gated metric is a *speed ratio* (engine vs single-shot, cached
vs cold, incremental repair vs full recompute), not an absolute time:
ratios compare two measurements taken on the same machine in the same
process, so they transfer across hardware generations and CI runner
classes in a way wall-clock seconds never could.  Absolute timings are
recorded under ``"info"`` for humans but never gated.  The gate is
one-sided — faster than baseline always passes.

Run single-core (``OMP_NUM_THREADS=1`` etc., as the CI job does) so
BLAS thread fan-out does not skew the single-shot side of the ratios.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

#: Schema version for the JSON artifact.
SCHEMA = 1

#: The small fixed workload the gate measures.  Big enough that the
#: chunked/incremental machinery engages, small enough for a CI minute.
WORKLOAD = {
    "n_train": 6000,
    "n_test": 64,
    "n_features": 64,
    "k": 5,
    "repeat": 3,
    # the three overhead-margin floors (monitor / trace / ops plane)
    # gate a <=5% effect against machine-state drift several times its
    # size; best-of-N is the noise control, so those rows get a much
    # deeper repeat than the throughput ratios
    "overhead_repeat": 15,
    "seed": 0,
    # weighted-method workload (PR 3: the engine's kernel registry).
    # The single-shot Theorem 7 reference is O(N^K)-expensive, so the
    # engine-vs-single-shot ratio runs at a small N; the cached ratio
    # exercises the serving-scale N through the engine only.
    "weighted_n_single": 300,
    "weighted_n_cached": 20000,
    "weighted_n_test": 4,
    "weighted_k": 1,
    # monitoring workload (PR 4): steady-state serving overhead of an
    # attached telemetry hub + idle scheduler, and recall recovery of a
    # drift-triggered background re-tune vs a freshly tuned control
    "monitor_n_train": 4000,
    "monitor_requests": 6,
    # K>=2 weighted fast paths (PR 5).  Per-path workload params are
    # recorded here so a regression is attributable to its path: the
    # piecewise ratio crosses sizes by design (the acceptance bar is
    # "piecewise at n_piecewise beats the reference at n_reference"),
    # the vectorized ratio compares equal N, K on the named
    # distance-based weights.
    "weighted_fast_k": 2,
    "weighted_fast_n_reference": 300,
    "weighted_fast_n_piecewise": 2000,
    "weighted_fast_n_test": 2,
    "weighted_fast_rank_weights": "rank",
    "weighted_fast_distance_weights": "inverse_distance",
    # weighted frontier (PR 8): the regression piecewise path vs the
    # configuration engine at serving-scale N (the >= 100x acceptance
    # bar), and the streaming engine's deterministic resident-bytes
    # quotient vs the materialized arrays (bit-identity hard-checked)
    "frontier_n_regression": 2000,
    "frontier_regression_k": 2,
    "frontier_n_stream": 200,
    "frontier_stream_k": 3,
    "frontier_stream_block_rows": 1 << 11,
    "frontier_n_test": 2,
    "frontier_rank_weights": "rank",
    "frontier_distance_weights": "gaussian",
    # tracing workload (PR 6): serving overhead of a fully enabled
    # tracer (span log + hub streaming, cache off) vs the NOOP default
    "trace_n_train": 4000,
    "trace_requests": 6,
    # ops-plane workload (PR 9): serving with the whole operations
    # plane enabled (SLO tracking + per-request alert evaluation + a
    # 19 Hz sampling profiler) vs the bare engine, cache off
    # 12 requests, not 6: at 19 Hz the profiler lands only ~2 samples
    # on a 6-request loop, so a single extra sample swings the margin;
    # the longer loop keeps the sampling cost representative
    "ops_n_train": 4000,
    "ops_requests": 12,
    "ops_profiler_hz": 19,
    # sharded tier workload (PR 7): a 4-shard data-mode router vs one
    # engine on the top-K (truncated) path, at an N large enough that
    # the single engine's chunk heuristic serializes the request.  The
    # merged values must bit-match the single engine (shard_max_err).
    "shard_n_train": 24000,
    "shard_n_test": 64,
    "shard_n_shards": 4,
    "shard_method": "truncated",
    # resilience workload (PR 10): a data-market burst through two
    # identical single-worker services, exact-only vs the precision
    # ladder.  The p99 margin is the ladder's acceptance bar (>= 2x at
    # measurement time); every degraded answer must stay within its
    # published certificate against the exact oracle (hard-checked).
    "burst_n_train": 40000,
    "burst_n_features": 8,
    "burst_requests": 24,
    "burst_n_test_per_request": 8,
    "burst_n_sellers": 8,
}


def measure() -> dict:
    """Run the gate workload and return the JSON-ready report."""
    from repro.experiments import (
        burst_serving,
        engine_throughput,
        incremental_churn,
        monitor_maintenance,
        ops_plane_overhead,
        shard_scaleout,
        tracing_overhead,
        weighted_engine,
        weighted_fast_paths,
        weighted_frontier,
    )

    throughput = engine_throughput(
        sizes=(WORKLOAD["n_train"],),
        n_test=WORKLOAD["n_test"],
        n_features=WORKLOAD["n_features"],
        k=WORKLOAD["k"],
        repeat=WORKLOAD["repeat"],
        seed=WORKLOAD["seed"],
    ).rows[0]
    churn = incremental_churn(
        sizes=(WORKLOAD["n_train"],),
        n_test=WORKLOAD["n_test"],
        n_features=WORKLOAD["n_features"],
        k=WORKLOAD["k"],
        repeat=WORKLOAD["repeat"],
        seed=WORKLOAD["seed"],
    ).rows[0]
    weighted = weighted_engine(
        n_single=WORKLOAD["weighted_n_single"],
        n_cached=WORKLOAD["weighted_n_cached"],
        n_test=WORKLOAD["weighted_n_test"],
        n_features=WORKLOAD["n_features"],
        k=WORKLOAD["weighted_k"],
        cached_repeat=WORKLOAD["repeat"],
        seed=WORKLOAD["seed"],
    ).rows
    monitor_overhead, monitor_recovery = monitor_maintenance(
        n_train=WORKLOAD["monitor_n_train"],
        n_requests=WORKLOAD["monitor_requests"],
        k=WORKLOAD["k"],
        repeat=WORKLOAD["overhead_repeat"],
        seed=WORKLOAD["seed"],
    ).rows
    traced = tracing_overhead(
        n_train=WORKLOAD["trace_n_train"],
        n_requests=WORKLOAD["trace_requests"],
        k=WORKLOAD["k"],
        repeat=WORKLOAD["overhead_repeat"],
        seed=WORKLOAD["seed"],
    ).rows[0]
    ops = ops_plane_overhead(
        n_train=WORKLOAD["ops_n_train"],
        n_requests=WORKLOAD["ops_requests"],
        k=WORKLOAD["k"],
        repeat=WORKLOAD["overhead_repeat"],
        profiler_hz=WORKLOAD["ops_profiler_hz"],
        seed=WORKLOAD["seed"],
    ).rows[0]
    sharded = shard_scaleout(
        n_train=WORKLOAD["shard_n_train"],
        n_test=WORKLOAD["shard_n_test"],
        n_features=WORKLOAD["n_features"],
        k=WORKLOAD["k"],
        n_shards=WORKLOAD["shard_n_shards"],
        method=WORKLOAD["shard_method"],
        repeat=WORKLOAD["repeat"],
        seed=WORKLOAD["seed"],
    ).rows[0]
    fast = weighted_fast_paths(
        n_reference=WORKLOAD["weighted_fast_n_reference"],
        n_piecewise=WORKLOAD["weighted_fast_n_piecewise"],
        n_test=WORKLOAD["weighted_fast_n_test"],
        n_features=WORKLOAD["n_features"],
        k=WORKLOAD["weighted_fast_k"],
        rank_only_weights=WORKLOAD["weighted_fast_rank_weights"],
        distance_weights=WORKLOAD["weighted_fast_distance_weights"],
        seed=WORKLOAD["seed"],
    ).rows[0]
    burst = burst_serving(
        n_train=WORKLOAD["burst_n_train"],
        n_features=WORKLOAD["burst_n_features"],
        k=WORKLOAD["k"],
        n_sellers=WORKLOAD["burst_n_sellers"],
        burst=WORKLOAD["burst_requests"],
        n_test_per_request=WORKLOAD["burst_n_test_per_request"],
        seed=WORKLOAD["seed"],
    ).rows[0]
    frontier = weighted_frontier(
        n_regression=WORKLOAD["frontier_n_regression"],
        regression_k=WORKLOAD["frontier_regression_k"],
        n_stream=WORKLOAD["frontier_n_stream"],
        stream_k=WORKLOAD["frontier_stream_k"],
        stream_block_rows=WORKLOAD["frontier_stream_block_rows"],
        n_test=WORKLOAD["frontier_n_test"],
        n_features=WORKLOAD["n_features"],
        rank_only_weights=WORKLOAD["frontier_rank_weights"],
        distance_weights=WORKLOAD["frontier_distance_weights"],
        seed=WORKLOAD["seed"],
    ).rows[0]
    return {
        "schema": SCHEMA,
        "workload": dict(WORKLOAD),
        "metrics": {
            "engine_speedup": throughput["speedup"],
            "cached_speedup": throughput["cached_speedup"],
            "incremental_add_speedup": churn["add_speedup"],
            "incremental_remove_speedup": churn["remove_speedup"],
            # capped: the raw ratio (in "info") divides a ~0.3 s
            # single-shot by a sub-millisecond engine time, so runner
            # load could swing it far more than 30% with no real
            # regression; losing the kernel fast path would still
            # collapse the capped value to ~1 and fail the gate
            "weighted_engine_vs_single_shot": min(
                weighted[0]["speedup"], 50.0
            ),
            "weighted_cached_speedup": weighted[1]["cached_speedup"],
            # K>=2 fast paths, capped for the same reason as above: the
            # raw piecewise ratio divides seconds by ~0.1 ms, so runner
            # noise could swing it arbitrarily; falling back to the
            # reference recursion would still collapse the capped value
            # to ~0 and fail the gate
            "weighted_k2_piecewise_speedup": min(
                fast["piecewise_speedup"], 50.0
            ),
            "weighted_k2_vectorized_speedup": min(
                fast["vectorized_speedup"], 50.0
            ),
            # regression piecewise vs the configuration engine at the
            # same serving-scale N — capped like the other fast ratios
            # (the raw value, >= 1000x here, lives in "info"; check()
            # additionally enforces the absolute >= 100x floor on it)
            "weighted_regression_piecewise_speedup": min(
                frontier["regression_speedup"], 150.0
            ),
            # deterministic resident-bytes quotient: materialized
            # configuration arrays over the streaming engine's fixed
            # block — pure arithmetic, no timing noise
            "weighted_streaming_memory_ratio": frontier[
                "streaming_memory_ratio"
            ],
            # ~1.0 = monitoring is free on the serving path; dropping
            # toward 0.95 means ~5% overhead (the bench_monitor bar)
            "monitor_overhead_margin": monitor_overhead["overhead_margin"],
            # ~1.0 = the background re-tune restores the recall of a
            # freshly tuned index after an injected distribution shift
            "monitor_retune_recovery": monitor_recovery["recovery_ratio"],
            # ~1.0 = fully enabled tracing is free on the serving path;
            # check() additionally enforces the absolute >= 0.95 floor
            # (<= 5% overhead), the observability leave-on-able bar
            "trace_overhead_margin": traced["trace_overhead_margin"],
            # ~1.0 = the whole ops plane (SLO tracking, per-request
            # alert evaluation, 19 Hz profiler) is free on the serving
            # path; check() additionally enforces the absolute >= 0.95
            # floor (<= 5% overhead), the leave-on-able bar
            "ops_plane_overhead_margin": ops["ops_plane_overhead_margin"],
            # > 1.0 = the 4-shard router serves the top-K request
            # faster than one engine over the full training set.
            # Capped like the other fast ratios; collapsing to <= 1
            # (shard fan-out no longer overlapping, or the merge gone
            # quadratic) fails the gate
            "shard_scaleout_margin": min(sharded["scaleout_margin"], 50.0),
            # >= 2x at measurement time: degrading precision along the
            # Theorem 1/2/5 ladder must cut burst p99 latency at least
            # in half versus exact-only serving.  Capped like the other
            # timing ratios; a ladder that stops engaging collapses the
            # value to ~1 and fails the gate
            "burst_p99_latency_margin": min(
                burst["burst_p99_latency_margin"], 10.0
            ),
            # 1.0 = every degraded answer's measured error against the
            # exact oracle stayed within the certificate it published;
            # check() hard-fails on anything else, tolerance or not
            "degraded_value_error_within_certificate": burst[
                "degraded_value_error_within_certificate"
            ],
        },
        "info": {
            "single_shot_s": throughput["single_shot_s"],
            "engine_s": throughput["engine_s"],
            "engine_cached_s": throughput["engine_cached_s"],
            "incremental_add_s": churn["add_s"],
            "incremental_remove_s": churn["remove_s"],
            "incremental_max_err": churn["max_err"],
            "roundtrip_exact": churn["roundtrip_exact"],
            "weighted_single_shot_s": weighted[0]["single_shot_s"],
            "weighted_engine_s": weighted[0]["engine_s"],
            "weighted_engine_vs_single_shot_raw": weighted[0]["speedup"],
            "weighted_engine_cold_s": weighted[1]["engine_cold_s"],
            "weighted_engine_cached_s": weighted[1]["engine_cached_s"],
            "weighted_max_err": weighted[0]["max_err"],
            "weighted_k2_reference_rank_s": fast["reference_rank_s"],
            "weighted_k2_reference_distance_s": fast["reference_distance_s"],
            "weighted_k2_piecewise_s": fast["piecewise_s"],
            "weighted_k2_vectorized_s": fast["vectorized_s"],
            "weighted_k2_piecewise_speedup_raw": fast["piecewise_speedup"],
            "weighted_k2_vectorized_speedup_raw": fast["vectorized_speedup"],
            "weighted_max_err_k2": fast["max_err"],
            "weighted_regression_engine_s": frontier["engine_s"],
            "weighted_regression_piecewise_s": frontier["piecewise_s"],
            "weighted_regression_piecewise_speedup_raw": frontier[
                "regression_speedup"
            ],
            "weighted_regression_max_err": frontier["regression_max_err"],
            "weighted_streaming_materialized_s": frontier["materialized_s"],
            "weighted_streaming_s": frontier["streaming_s"],
            "weighted_streaming_overhead": frontier["streaming_overhead"],
            "weighted_streaming_max_err": frontier["streaming_max_err"],
            "monitor_plain_s": monitor_overhead["plain_s"],
            "monitor_monitored_s": monitor_overhead["monitored_s"],
            "monitor_recall_degraded": monitor_recovery["recall_degraded"],
            "monitor_recall_after": monitor_recovery["recall_after"],
            "monitor_recall_fresh": monitor_recovery["recall_fresh"],
            "monitor_retunes": monitor_recovery["retunes"],
            "trace_plain_s": traced["plain_s"],
            "trace_traced_s": traced["traced_s"],
            "trace_spans_per_request": traced["spans_per_request"],
            "ops_plain_s": ops["plain_s"],
            "ops_plane_s": ops["ops_s"],
            "ops_profiler_samples": ops["profiler_samples"],
            "ops_profiler_overruns": ops["profiler_overruns"],
            "ops_slo_evaluations": ops["slo_evaluations"],
            "shard_single_engine_s": sharded["single_engine_s"],
            "shard_router_s": sharded["router_s"],
            "shard_scaleout_margin_raw": sharded["scaleout_margin"],
            "shard_max_err": sharded["max_err"],
            "burst_exact_p99_s": burst["exact_p99_s"],
            "burst_ladder_p99_s": burst["ladder_p99_s"],
            "burst_p99_latency_margin_raw": burst["burst_p99_latency_margin"],
            "burst_degraded_requests": burst["degraded_requests"],
            "burst_rung_picks": burst["rung_picks"],
            "burst_worst_certificate_slack": burst["worst_certificate_slack"],
            "burst_recovered_to_exact": burst["burst_recovered_to_exact"],
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def check(baseline: dict, candidate: dict, tolerance: float) -> list[str]:
    """Return a failure message per regressed metric (empty = pass)."""
    failures = []
    if baseline.get("workload") != candidate.get("workload"):
        failures.append(
            "workload mismatch: baseline "
            f"{baseline.get('workload')} vs candidate "
            f"{candidate.get('workload')}; regenerate the baseline"
        )
        return failures
    for name, base_value in baseline["metrics"].items():
        got = candidate["metrics"].get(name)
        if got is None:
            failures.append(f"{name}: missing from candidate")
            continue
        floor = base_value * (1.0 - tolerance)
        if got < floor:
            failures.append(
                f"{name}: {got:.3f} fell below {floor:.3f} "
                f"(baseline {base_value:.3f} - {tolerance:.0%})"
            )
    # correctness must not drift, whatever the speed
    err = candidate["info"].get("incremental_max_err")
    if err is not None and err > 1e-12:
        failures.append(f"incremental_max_err: {err:g} exceeds 1e-12")
    if candidate["info"].get("roundtrip_exact") is False:
        failures.append("roundtrip_exact: add-then-remove no longer bit-exact")
    werr = candidate["info"].get("weighted_max_err")
    if werr is not None and werr > 1e-12:
        failures.append(f"weighted_max_err: {werr:g} exceeds 1e-12")
    werr_k2 = candidate["info"].get("weighted_max_err_k2")
    if werr_k2 is not None and werr_k2 > 1e-12:
        failures.append(
            f"weighted_max_err_k2: {werr_k2:g} exceeds 1e-12 (K>=2 fast "
            "paths drifted from the reference recursion)"
        )
    # the weighted-frontier acceptance bars are absolute: regression
    # piecewise within 1e-12 of the configuration engine AND >= 100x
    # faster at serving-scale N; streaming bit-identical (err == 0)
    rerr = candidate["info"].get("weighted_regression_max_err")
    if rerr is not None and rerr > 1e-12:
        failures.append(
            f"weighted_regression_max_err: {rerr:g} exceeds 1e-12 "
            "(regression piecewise drifted from the configuration engine)"
        )
    rspeed = candidate["info"].get(
        "weighted_regression_piecewise_speedup_raw"
    )
    if rspeed is not None and rspeed < 100.0:
        failures.append(
            f"weighted_regression_piecewise_speedup_raw: {rspeed:.1f} "
            "below the 100x acceptance floor"
        )
    serr_stream = candidate["info"].get("weighted_streaming_max_err")
    if serr_stream is not None and serr_stream != 0.0:
        failures.append(
            f"weighted_streaming_max_err: {serr_stream:g} nonzero (the "
            "streaming engine no longer bit-matches the materialized one)"
        )
    # the maintenance acceptance bar is absolute (within 2% of a fresh
    # tune), tighter than the ratio gate's tolerance
    after = candidate["info"].get("monitor_recall_after")
    fresh = candidate["info"].get("monitor_recall_fresh")
    if after is not None and fresh is not None and after < fresh - 0.02:
        failures.append(
            f"monitor_recall_after: {after:.3f} more than 2% below the "
            f"freshly tuned control ({fresh:.3f})"
        )
    # the sharded tier's acceptance bar is exactness: the cross-shard
    # merge must reproduce the single engine bit-for-bit
    serr = candidate["info"].get("shard_max_err")
    if serr is not None and serr > 1e-12:
        failures.append(
            f"shard_max_err: {serr:g} exceeds 1e-12 (cross-shard merge "
            "no longer bit-matches the single engine)"
        )
    # the tracing acceptance bar is absolute (enabled tracing costs at
    # most 5% of untraced serving), tighter than the ratio gate
    margin = candidate["metrics"].get("trace_overhead_margin")
    if margin is not None and margin < 0.95:
        failures.append(
            f"trace_overhead_margin: {margin:.3f} below the 0.95 floor "
            "(enabled tracing costs more than 5% of untraced serving)"
        )
    # the ops-plane acceptance bar is absolute too: SLO tracking,
    # per-request alert evaluation, and the 19 Hz profiler must
    # together cost at most 5% of bare serving
    ops_margin = candidate["metrics"].get("ops_plane_overhead_margin")
    if ops_margin is not None and ops_margin < 0.95:
        failures.append(
            f"ops_plane_overhead_margin: {ops_margin:.3f} below the 0.95 "
            "floor (the enabled ops plane costs more than 5% of bare "
            "serving)"
        )
    # the degradation ladder's correctness bar is absolute and has no
    # tolerance: a degraded answer outside its published certificate is
    # a wrong answer sold as a certified one
    within = candidate["metrics"].get(
        "degraded_value_error_within_certificate"
    )
    if within is not None and within < 1.0:
        slack = candidate["info"].get("burst_worst_certificate_slack")
        failures.append(
            "degraded_value_error_within_certificate: "
            f"{within:g} != 1.0 — a degraded result exceeded its error "
            f"certificate (worst slack {slack})"
        )
    recovered = candidate["info"].get("burst_recovered_to_exact")
    if recovered is not None and recovered < 1.0:
        failures.append(
            "burst_recovered_to_exact: the first post-burst request did "
            "not return to exact, unmarked serving"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--out", metavar="PATH", help="measure and write the JSON report"
    )
    mode.add_argument(
        "--check",
        nargs=2,
        metavar=("BASELINE", "CANDIDATE"),
        help="compare a candidate report against the committed baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown per metric (default 0.30)",
    )
    args = parser.parse_args(argv)

    if args.out:
        report = measure()
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
        for name, value in sorted(report["metrics"].items()):
            print(f"  {name:>28s}: {value:.3f}")
        return 0

    baseline_path, candidate_path = args.check
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(candidate_path) as fh:
        candidate = json.load(fh)
    failures = check(baseline, candidate, args.tolerance)
    for name in sorted(baseline["metrics"]):
        base_value = baseline["metrics"][name]
        got = candidate["metrics"].get(name, float("nan"))
        print(f"  {name:>28s}: baseline {base_value:7.3f}  candidate {got:7.3f}")
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed "
              f"beyond {args.tolerance:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nOK: no metric regressed beyond {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
