"""Live operations plane: overhead and burn-rate alert acceptance gates.

Two bars from the ops-plane PR's acceptance criteria:

* serving with the *whole* plane enabled — SLO tracking over the hub,
  an alert manager (threshold + counter-increase + SLO burn rules)
  evaluated after every request, and a 19 Hz sampling profiler running
  throughout — must cost at most 5% over the bare engine
  (``ops_plane_overhead_margin >= 0.95``, the same floor
  ``bench_to_json.py check()`` enforces on the committed baseline);
* an induced latency regression must flip the SLO burn-rate alert to
  firing, and recovery must resolve it — exercised here with an
  injected clock so the 5m/1h burn windows are traversed in
  microseconds of real time.
"""

from repro.experiments import ops_plane_overhead
from repro.experiments.reporting import format_result
from repro.monitor import AlertManager, SLOTracker, TelemetryHub


def test_ops_plane_overhead(once):
    result = once(lambda: ops_plane_overhead())
    print()
    print(format_result(result))
    row = result.rows[0]

    # the leave-on-able bar: SLOs + alerts + profiler within 5%
    assert row["ops_s"] <= (1 / 0.95) * row["plain_s"], (
        f"ops plane margin {row['ops_plane_overhead_margin']:.3f} below "
        "the 0.95 floor (more than 5% overhead on the serving path)"
    )
    # every request was followed by a full alert/SLO evaluation
    assert row["slo_evaluations"] > 0
    # a healthy workload must not fire anything
    assert row["alerts_fired"] == 0
    # the profiler actually sampled during the timed loops
    assert row["profiler_samples"] > 0


def test_burn_rate_alert_fires_and_resolves():
    clock = [0.0]
    hub = TelemetryHub()
    slo = SLOTracker(hub, clock=lambda: clock[0])
    slo.add("latency", "service.job.latency p99 < 50ms")
    alerts = AlertManager(hub, slo=slo, clock=lambda: clock[0])

    def advance(seconds, n, value):
        for _ in range(10):
            clock[0] += seconds / 10.0
            for _ in range(n // 10):
                hub.record("service.job.latency", value)
            slo.tick()

    advance(600.0, 1000, 0.001)  # healthy baseline
    assert not alerts.evaluate()

    advance(300.0, 500, 0.5)  # regression: every request blows the SLO
    transitions = alerts.evaluate()
    assert ("slo.latency", "firing") in [
        (t["name"], t["state"]) for t in transitions
    ], "induced latency regression did not fire the burn-rate alert"
    assert any(a["name"] == "slo.latency" for a in alerts.active())

    advance(3600.0, 20000, 0.001)  # recovery drains both burn windows
    transitions = alerts.evaluate()
    assert ("slo.latency", "resolved") in [
        (t["name"], t["state"]) for t in transitions
    ], "recovery did not resolve the burn-rate alert"
    assert not alerts.active()
