"""Figure 7: exact vs LSH per-query runtime on the three dataset
stand-ins with their estimated relative contrast (K = 1)."""

from repro.experiments import figure7_dataset_table
from repro.experiments.reporting import format_result


def test_fig07_dataset_table(once):
    result = once(
        lambda: figure7_dataset_table(
            n_test=5, epsilon=0.1, delta=0.1, seed=0, size_scale=0.25
        )
    )
    print()
    print(format_result(result))
    rows = {r["dataset"]: r for r in result.rows}
    # contrast estimates fall in the paper's ballpark (1.1 - 1.6)
    for r in result.rows:
        assert 1.05 < r["contrast"] < 1.8
    # the paper's contrast ordering: yahoo10m highest
    assert rows["yahoo10m"]["contrast"] > rows["imagenet"]["contrast"]
    # exact runtime follows dataset size
    assert rows["yahoo10m"]["exact_s"] > rows["cifar10"]["exact_s"]
    # approximation quality within the epsilon target
    for r in result.rows:
        assert r["lsh_max_err"] <= 0.1 + 1e-9
