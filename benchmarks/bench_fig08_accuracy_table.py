"""Figure 8: KNN (K=1,2,5) vs logistic regression prediction accuracy."""

from repro.experiments import figure8_accuracy_table
from repro.experiments.reporting import format_result


def test_fig08_accuracy_table(once):
    result = once(
        lambda: figure8_accuracy_table(n_train=2000, n_test=400, seed=0)
    )
    print()
    print(format_result(result))
    for row in result.rows:
        # KNN is a competitive classifier on embedding features
        assert row["1nn"] > 0.6
        assert row["logistic"] - max(row["1nn"], row["5nn"]) < 0.2
    by_name = {r["dataset"]: r for r in result.rows}
    # the paper's ordering: yahoo10m is the easiest dataset
    assert by_name["yahoo10m"]["1nn"] >= by_name["cifar10"]["1nn"]
    assert by_name["yahoo10m"]["1nn"] >= by_name["imagenet"]["1nn"]
