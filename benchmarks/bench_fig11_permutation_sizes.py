"""Figure 11: permutation budgets across training sizes.

Hoeffding (baseline) grows with N and over-provisions; Bennett
(Theorem 5) flattens; the convergence heuristic stops earliest while
meeting the error target.
"""

from repro.experiments import figure11_permutation_sizes
from repro.experiments.reporting import format_result


def test_fig11_permutation_sizes(once):
    result = once(
        lambda: figure11_permutation_sizes(
            sizes=(100, 300, 1000, 3000),
            k=1,
            epsilon=0.1,
            delta=0.05,
            probe_grid=(5, 10, 20, 40, 80, 160),
            seed=0,
        )
    )
    print()
    print(format_result(result))
    hoeff = result.column("hoeffding")
    benn = result.column("bennett")
    truth = result.column("ground_truth")
    heur = result.column("heuristic")
    # Hoeffding grows with N; Bennett stays ~flat (the paper's point)
    assert hoeff[-1] > hoeff[0]
    assert benn[-1] <= benn[0] * 1.2
    # the ground truth requirement is far below the theory bounds
    assert all(t <= h for t, h in zip(truth, hoeff))
    assert all(t <= b for t, b in zip(truth, benn))
    # the heuristic under-shoots the theoretical budgets too
    assert all(he <= h for he, h in zip(heur, hoeff))
