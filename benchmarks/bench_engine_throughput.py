"""Engine throughput: chunked/cached/parallel exact valuation vs the
single-shot core path.

The acceptance bar for the engine subsystem: at N >= 20k synthetic
points, `ValuationEngine` must beat `exact_knn_shapley` (the seed
single-shot implementation) wall-clock while agreeing to ~1e-15, and a
cache-hit repeat must be faster still.
"""

from repro.experiments import engine_throughput
from repro.experiments.reporting import format_result


def test_engine_beats_single_shot(once):
    result = once(
        lambda: engine_throughput(
            sizes=(5000, 20000),
            n_test=128,
            n_features=32,
            k=5,
            repeat=3,
            seed=0,
        )
    )
    print()
    print(format_result(result))
    for row in result.rows:
        # exact-path agreement (acceptance: 1e-10)
        assert row["max_err"] < 1e-10
        # cached repeats skip the sort: never slower than computing
        assert row["engine_cached_s"] <= row["engine_s"]
    # the headline: chunked engine execution beats the single-shot path
    # wall-clock at N >= 20k
    big = [r for r in result.rows if r["n_train"] >= 20000]
    assert big, "sweep must include an N >= 20k point"
    for row in big:
        assert row["engine_s"] < row["single_shot_s"], (
            f"engine {row['engine_s']:.3f}s not faster than "
            f"single-shot {row['single_shot_s']:.3f}s at N={row['n_train']}"
        )
        assert row["n_chunks"] > 1
