"""Ablation: Algorithm 2's incremental heap vs full re-evaluation.

The improved MC estimator's speed comes from maintaining the K nearest
neighbors in a bounded max-heap so each permutation costs O(N log K)
instead of the baseline's O(N^2) re-evaluations.  Both estimators
sample the same estimand, so at equal permutation budgets the values
agree statistically — only the cost differs.  This ablation measures
the per-permutation speedup as N grows.
"""

from repro.core import baseline_mc_shapley, improved_mc_shapley
from repro.datasets import mnist_deep_like
from repro.experiments.reporting import format_table
from repro.metrics import max_abs_error, time_call
from repro.utility import KNNClassificationUtility


def test_heap_vs_reevaluation(once):
    k = 3
    perms = 3

    def run():
        rows = []
        for n in (400, 800, 1600, 3200):
            data = mnist_deep_like(n_train=n, n_test=3, seed=0)
            utility = KNNClassificationUtility(data, k)
            slow = time_call(
                lambda: baseline_mc_shapley(
                    utility, n_permutations=perms, seed=1
                )
            )
            fast = time_call(
                lambda: improved_mc_shapley(
                    utility, n_permutations=perms, seed=1
                )
            )
            rows.append(
                {
                    "n_train": n,
                    "reevaluation_s": slow.seconds,
                    "heap_s": fast.seconds,
                    "speedup": slow.seconds / max(fast.seconds, 1e-9),
                    "estimate_gap": max_abs_error(
                        slow.value.values, fast.value.values
                    ),
                }
            )
        return rows

    rows = once(run)
    print()
    print(format_table(
        ("n_train", "reevaluation_s", "heap_s", "speedup", "estimate_gap"),
        rows,
    ))
    # the heap implementation wins everywhere and the gap widens with N
    for r in rows:
        assert r["speedup"] > 1.0
    assert rows[-1]["speedup"] > rows[0]["speedup"]
    # same estimand: with identical budgets the estimates are close
    # (not identical — the two implementations consume randomness
    # differently)
    for r in rows:
        assert r["estimate_gap"] < 0.2 / k
