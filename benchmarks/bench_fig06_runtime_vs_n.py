"""Figure 6: runtime vs training size (exact vs baseline MC vs LSH).

The paper's shape: the exact algorithm beats the baseline MC by orders
of magnitude at every size; the LSH query phase grows sublinearly.
"""

import math

from repro.experiments import figure6_runtime_vs_n
from repro.experiments.reporting import format_result


def test_fig06_runtime_vs_n(once):
    result = once(
        lambda: figure6_runtime_vs_n(
            sizes=(500, 1000, 2000, 4000, 8000),
            mc_max_n=1000,
            n_test=5,
            k=1,
            epsilon=0.1,
            delta=0.1,
            seed=0,
        )
    )
    print()
    print(format_result(result))
    rows = result.rows
    # baseline MC is orders of magnitude slower than exact wherever run
    for r in rows:
        if not math.isnan(r["mc_baseline_s"]):
            assert r["mc_baseline_s"] > 100 * r["exact_s"]
    # LSH query cost grows slower than the training size
    first, last = rows[0], rows[-1]
    size_ratio = last["n_train"] / first["n_train"]
    lsh_ratio = last["lsh_query_s"] / max(first["lsh_query_s"], 1e-9)
    assert lsh_ratio < size_ratio
    # and the LSH values stay within the epsilon target
    for r in rows:
        assert r["lsh_max_err"] <= 0.1 + 1e-9
