"""Ablation: tightness of the Theorem 2 truncation bound.

Theorem 2 guarantees max error <= epsilon when truncating at
K* = max(K, ceil(1/epsilon)).  This ablation measures how tight the
guarantee is in practice (the measured error is usually far below
epsilon, because the bound min(1/i, 1/K) on the discarded values is
worst-case) and confirms that per-test value *differences* — and hence
rankings — are preserved among the K* nearest neighbors.
"""

import numpy as np

from repro.core import exact_knn_shapley, truncated_knn_shapley, truncation_rank
from repro.datasets import mnist_deep_like
from repro.experiments.reporting import format_table
from repro.metrics import max_abs_error
from repro.utility import KNNClassificationUtility


def test_truncation_tightness(once):
    k = 3
    data = mnist_deep_like(n_train=4000, n_test=10, seed=0)

    def run():
        exact = exact_knn_shapley(data, k)
        rows = []
        for epsilon in (0.5, 0.2, 0.1, 0.05, 0.02, 0.01):
            approx = truncated_knn_shapley(data, k, epsilon)
            err = max_abs_error(approx.values, exact.values)
            rows.append(
                {
                    "epsilon": epsilon,
                    "k_star": approx.extra["k_star"],
                    "measured_max_err": err,
                    "bound_slack": epsilon / max(err, 1e-12),
                }
            )
        return exact, rows

    exact, rows = once(run)
    print()
    print(format_table(
        ("epsilon", "k_star", "measured_max_err", "bound_slack"), rows
    ))
    for r in rows:
        assert r["measured_max_err"] <= r["epsilon"] + 1e-12
    # error decreases as the truncation gets finer
    errs = [r["measured_max_err"] for r in rows]
    assert errs[-1] <= errs[0]

    # ranking preservation among the K* nearest (Theorem 2's rider)
    epsilon = 0.05
    k_star = truncation_rank(k, epsilon)
    approx = truncated_knn_shapley(data, k, epsilon)
    utility = KNNClassificationUtility(data, k)
    for j in range(3):
        head = utility.order[j][: k_star - 1]
        e = exact.extra["per_test"][j][head]
        a = approx.extra["per_test"][j][head]
        np.testing.assert_array_equal(np.argsort(-e), np.argsort(-a))
