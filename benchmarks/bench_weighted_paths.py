"""Weighted K >= 2 fast paths: piecewise counting and the batched
configuration engine vs the per-coalition reference recursion.

The acceptance bars of the fast-path stack (also gated in
``BENCH_engine.json`` via ``bench_to_json.py``):

* the O(N·K^2) piecewise path values N=2000 points with a rank-only
  weight function in *less* wall-clock than the reference recursion
  needs for N=300;
* the vectorized configuration engine beats the reference by >= 10x at
  equal N, K with distance-based weights;
* both stay within 1e-12 of the reference values.
"""

from repro.experiments import weighted_fast_paths
from repro.experiments.reporting import format_result


def test_weighted_fast_paths(once):
    result = once(
        lambda: weighted_fast_paths(
            n_reference=300,
            n_piecewise=2000,
            n_test=2,
            k=2,
            seed=0,
        )
    )
    print()
    print(format_result(result))
    row = result.rows[0]
    # correctness is non-negotiable whatever the timings
    assert row["max_err"] <= 1e-12
    # the headline claim: exact valuation at ~7x the training size in
    # less time than the reference needs for the small problem
    assert row["piecewise_s"] < row["reference_rank_s"]
    # the constant-factor claim for the general (distance-weighted) case
    assert row["vectorized_speedup"] >= 10.0
