"""Figure 15: composite-game dynamics (K=10).

The analyst's value grows with total utility and takes at least half;
composite contributor values correlate with data-only values; per-
contributor value dilutes as more contributors join.
"""

from repro.experiments import figure15_composite_game
from repro.experiments.reporting import format_result


def test_fig15_composite_game(once):
    result = once(
        lambda: figure15_composite_game(
            contributor_grid=(20, 60, 120, 200), n_test=10, k=10, seed=0
        )
    )
    print()
    print(format_result(result))
    rows = result.rows
    # (a) analyst value tracks total utility and takes >= 1/2
    for r in rows:
        assert r["analyst_share"] >= 0.5 - 1e-9
        assert r["analyst_value"] <= r["total_utility"] + 1e-9
    # (b) composite vs data-only contributor correlation is high
    assert all(r["corr_with_data_only"] > 0.9 for r in rows)
    # (c) per-contributor value dilutes as more contributors join
    # (endpoint comparison — the series is noisy at small sizes)
    means = result.column("contributor_mean")
    assert means[-1] < means[0]
    # (d) the minimum contributor value is the most negative early on
    mins = result.column("contributor_min")
    maxs = result.column("contributor_max")
    assert all(lo <= hi for lo, hi in zip(mins, maxs))
