"""Figure 13: multi-data-per-seller — exact (Theorem 8) vs improved MC.

At constant pooled data, the exact algorithm's runtime grows with the
seller count and with K; the MC estimator's runtime is governed by the
pooled size only, so it stays flat in both sweeps.
"""

from repro.experiments import figure13_multidata_runtime
from repro.experiments.reporting import format_result


def test_fig13_multidata_runtime(once):
    result = once(
        lambda: figure13_multidata_runtime(
            seller_grid=(5, 10, 15, 20),
            k_grid=(1, 2, 3),
            pooled_n=60,
            fixed_k=2,
            fixed_sellers=10,
            n_test=1,
            mc_permutations=50,
            seed=0,
        )
    )
    print()
    print(format_result(result))
    vary_m = [r for r in result.rows if r["sweep"] == "vary_sellers"]
    vary_k = [r for r in result.rows if r["sweep"] == "vary_k"]
    # exact grows with the seller count; MC grows strictly less
    exact_growth = vary_m[-1]["exact_s"] / max(vary_m[0]["exact_s"], 1e-9)
    mc_growth = vary_m[-1]["mc_s"] / max(vary_m[0]["mc_s"], 1e-9)
    assert exact_growth > 1.5
    assert mc_growth < exact_growth
    # exact grows with K; MC stays comparatively flat
    exact_growth_k = vary_k[-1]["exact_s"] / max(vary_k[0]["exact_s"], 1e-9)
    mc_growth_k = vary_k[-1]["mc_s"] / max(vary_k[0]["mc_s"], 1e-9)
    assert mc_growth_k < exact_growth_k
