"""Figure 16: KNN Shapley values vs logistic-regression Shapley values.

The cheap exact KNN values correlate with the expensive Monte Carlo
values of a retrained logistic regression on an Iris-like dataset.
"""

from repro.experiments import figure16_surrogate_correlation
from repro.experiments.reporting import format_result


def test_fig16_surrogate(once):
    result = once(
        lambda: figure16_surrogate_correlation(
            n_train=36,
            n_test=30,
            k=1,
            label_noise=0.15,
            mc_permutations=300,
            seed=1,
        )
    )
    print()
    print(format_result(result))
    lookup = {r["metric"]: r["correlation"] for r in result.rows}
    assert lookup["pearson"] > 0.5
    assert lookup["spearman"] > 0.3
