"""Resilience tier: burst-p99 and certified-degradation acceptance gates.

Three bars from the deadline-aware serving PR's acceptance criteria:

* under a full-queue burst, the precision ladder must cut p99 total
  job latency at least 2x versus an identical exact-only service;
* every degraded answer must stay within the error certificate it
  published, measured against the exact oracle for its own batch;
* the first request after the burst drains must serve exact and
  unmarked (the recovery rule).
"""

from repro.experiments import burst_serving
from repro.experiments.reporting import format_result


def test_burst_ladder_margin_certificates_and_recovery(once):
    result = once(lambda: burst_serving())
    print()
    print(format_result(result))
    row = result.rows[0]

    assert row["degraded_requests"] > 0, (
        "the burst never engaged the ladder — no degraded requests"
    )
    assert row["degraded_value_error_within_certificate"] == 1.0, (
        f"a degraded result exceeded its certificate (worst slack "
        f"{row['worst_certificate_slack']:g})"
    )
    assert row["burst_recovered_to_exact"] == 1.0, (
        "the first post-burst request did not return to exact serving"
    )
    assert row["burst_p99_latency_margin"] >= 2.0, (
        f"ladder p99 ({row['ladder_p99_s']:.3f}s) less than 2x better "
        f"than exact-only ({row['exact_p99_s']:.3f}s)"
    )
