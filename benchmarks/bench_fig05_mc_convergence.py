"""Figure 5: the MC estimate converges to the exact Shapley value."""

from repro.experiments import figure5_mc_convergence
from repro.experiments.reporting import format_result


def test_fig05_mc_convergence(once):
    result = once(
        lambda: figure5_mc_convergence(
            n_train=1000,
            n_test=20,
            k=1,
            permutation_grid=(10, 50, 100, 500, 2000),
            seed=0,
        )
    )
    print()
    print(format_result(result))
    errs = result.column("max_abs_error")
    corrs = result.column("pearson_r")
    # shape: monotone-ish convergence to the exact values
    assert errs[-1] < errs[0] / 3
    assert corrs[-1] > 0.95
