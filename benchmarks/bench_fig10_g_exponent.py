"""Figure 10: the complexity exponent g(C_K*) of the LSH method.

(a) contrast grows and g falls with epsilon; g < 1 (sublinear) except
for the smallest epsilon.  (b) g varies mildly with the projection
width and flattens.
"""

from repro.experiments import figure10_g_vs_epsilon, figure10_g_vs_width
from repro.experiments.reporting import format_result


def test_fig10a_g_vs_epsilon(once):
    result = once(
        lambda: figure10_g_vs_epsilon(
            n_train=5000,
            n_test=50,
            k=1,
            epsilons=(0.001, 0.01, 0.1, 1.0),
            seed=0,
        )
    )
    print()
    print(format_result(result))
    gs = result.column("g")
    contrasts = result.column("contrast")
    # epsilon up -> K* down -> contrast up -> g down
    assert all(a >= b - 1e-9 for a, b in zip(gs, gs[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(contrasts, contrasts[1:]))
    # the largest epsilons are in the sublinear regime
    assert gs[-1] < 1.0
    # the smallest epsilon has the largest exponent
    assert gs[0] == max(gs)


def test_fig10b_g_vs_width(once):
    result = once(
        lambda: figure10_g_vs_width(
            contrasts=(1.1, 1.3, 1.6, 2.0),
            widths=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0),
        )
    )
    print()
    print(format_result(result))
    # g is monotone in contrast at every width
    for w in (0.5, 2.0, 6.0):
        series = [r["g"] for r in result.rows if r["width"] == w]
        assert all(a > b for a, b in zip(series, series[1:]))
    # flattens: the last two widths differ little
    for c in (1.3, 2.0):
        series = [r["g"] for r in result.rows if r["contrast"] == c]
        assert abs(series[-1] - series[-2]) < 0.1
