"""Sharded tier: scale-out and exact-merge acceptance gates.

Two bars from the sharding PR's acceptance criteria:

* a 4-shard data-mode router must serve the top-K (truncated) request
  faster than one engine over the full training set, at an N large
  enough that the single engine's chunk heuristic serializes it;
* the cross-shard merge must be exact — the router's values bit-match
  the single engine's to 1e-12 (they are identical in practice).
"""

from repro.experiments import shard_scaleout
from repro.experiments.reporting import format_result


def test_shard_scaleout_and_exact_merge(once):
    result = once(lambda: shard_scaleout())
    print()
    print(format_result(result))
    row = result.rows[0]

    assert row["max_err"] <= 1e-12, (
        f"cross-shard merge drifted from the single engine by "
        f"{row['max_err']:g}"
    )
    assert row["scaleout_margin"] > 1.0, (
        f"4-shard router ({row['router_s']:.3f}s) no faster than the "
        f"single engine ({row['single_engine_s']:.3f}s)"
    )
