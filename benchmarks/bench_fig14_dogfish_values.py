"""Figure 14: semantics of the values on the dog-fish stand-in (K=3).

(a) top-valued points share the test class; (b) unweighted and weighted
values correlate strongly; (c) the class supplying more misleading
(label-inconsistent) neighbors earns lower values.
"""

from repro.experiments import figure14_value_semantics
from repro.experiments.reporting import format_result


def test_fig14_value_semantics(once):
    result = once(
        lambda: figure14_value_semantics(
            n_train=60, n_test=5, k=3, top=10, seed=0
        )
    )
    print()
    print(format_result(result))
    lookup = {r["quantity"]: r["value"] for r in result.rows}
    # (a) the top-valued points are semantically related to the test
    assert lookup["top-valued same-label fraction"] > 0.7
    # (b) unweighted vs weighted agreement (paper: "close")
    assert lookup["pearson(unweighted, weighted)"] > 0.7
    # (c) the class with more misleading neighbors has the lower mean SV
    counts = {
        c: lookup[f"class {c}: inconsistent-neighbor count"]
        for c in (0, 1)
    }
    means = {c: lookup[f"class {c}: mean SV"] for c in (0, 1)}
    if counts[0] != counts[1]:
        worse = max(counts, key=counts.get)
        better = min(counts, key=counts.get)
        assert means[worse] <= means[better] + 1e-9
