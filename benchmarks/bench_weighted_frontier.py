"""Weighted frontier: the O(N·poly(K)) regression piecewise path and
the fixed-memory streaming configuration engine.

The acceptance bars (also gated in ``BENCH_engine.json`` via
``bench_to_json.py``):

* the regression piecewise path (rank-only weights, eq 27) beats the
  configuration engine by >= 100x at N=2000, K=2, within 1e-12;
* the streaming engine reproduces the materialized engine's sums
  *bit-for-bit* (same colex order, same block boundaries) while its
  resident configuration bytes stay O(block_rows*K) — a deterministic
  memory ratio well above 1.
"""

from repro.experiments import weighted_frontier
from repro.experiments.reporting import format_result


def test_weighted_frontier(once):
    result = once(lambda: weighted_frontier(seed=0))
    print()
    print(format_result(result))
    row = result.rows[0]
    # correctness is non-negotiable whatever the timings
    assert row["regression_max_err"] <= 1e-12
    assert row["streaming_max_err"] == 0.0
    # the headline claim: exact weighted regression values at serving
    # scale in a fraction of the configuration engine's time
    assert row["regression_speedup"] >= 100.0
    # the fixed-memory claim: streaming holds a small constant fraction
    # of the materialized configuration bytes
    assert row["streaming_memory_ratio"] > 4.0
