"""Figure 9: relative contrast governs the LSH method's difficulty.

(a) C_K* vs K* orders deep > gist > dog-fish; (b, c) the SV error falls
with the number of hash tables / returned candidates, low-contrast
datasets needing more; (d) the SV error falls with retrieval recall.
"""

import numpy as np

from repro.experiments import (
    figure9_contrast_vs_kstar,
    figure9_error_vs_recall,
    figure9_error_vs_tables,
)
from repro.experiments.reporting import format_result


def test_fig09a_contrast_vs_kstar(once):
    result = once(
        lambda: figure9_contrast_vs_kstar(
            n_train=2000, n_test=50, kstar_grid=(1, 5, 10, 50, 100), seed=0
        )
    )
    print()
    print(format_result(result))
    last = {
        r["dataset"]: r["contrast"]
        for r in result.rows
        if r["k_star"] == 100
    }
    assert last["deep"] > last["gist"] > last["dogfish"]
    # contrast decreases with K* for every dataset
    for name in ("deep", "gist", "dogfish"):
        series = [r["contrast"] for r in result.rows if r["dataset"] == name]
        assert series[0] >= series[-1]


def test_fig09bc_error_vs_tables(once):
    result = once(
        lambda: figure9_error_vs_tables(
            n_train=2000,
            n_test=10,
            k=2,
            epsilon=0.05,
            table_grid=(1, 2, 5, 10, 20, 40),
            seed=0,
        )
    )
    print()
    print(format_result(result))
    for name in ("deep", "gist", "dogfish"):
        series = [
            r["max_sv_error"] for r in result.rows if r["dataset"] == name
        ]
        # more tables -> error no worse (compare endpoints)
        assert series[-1] <= series[0] + 1e-9
    # the low-contrast dataset has the largest terminal error
    terminal = {
        r["dataset"]: r["max_sv_error"]
        for r in result.rows
        if r["n_tables"] == 40
    }
    assert terminal["dogfish"] >= terminal["deep"] - 1e-9


def test_fig09d_error_vs_recall(once):
    result = once(
        lambda: figure9_error_vs_recall(
            n_train=2000,
            n_test=10,
            k=2,
            epsilon=0.05,
            table_grid=(1, 2, 5, 10, 20, 40),
            seed=0,
        )
    )
    print()
    print(format_result(result))
    # pooled across datasets, error decreases with recall
    recalls = np.array(result.column("recall"))
    errors = np.array(result.column("max_sv_error"))
    lo = errors[recalls < 0.5].mean() if np.any(recalls < 0.5) else None
    hi = errors[recalls > 0.9].mean() if np.any(recalls > 0.9) else None
    if lo is not None and hi is not None:
        assert hi <= lo
