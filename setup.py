"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in environments without the ``wheel`` package (pip's
PEP 517 editable path needs ``bdist_wheel``):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
