"""Tests for the queue-based valuation service."""

import time

import numpy as np
import pytest

from repro.core import exact_knn_shapley
from repro.engine import ValuationEngine, ValuationRequest, ValuationService
from repro.exceptions import DataValidationError, ParameterError


@pytest.fixture(scope="module")
def data():
    from repro.datasets import gaussian_blobs

    return gaussian_blobs(n_train=150, n_test=12, n_features=6, seed=95)


@pytest.fixture()
def engine(data):
    return ValuationEngine(data.x_train, data.y_train, 3)


def test_concurrent_requests_all_settle_correctly(data, engine):
    reference = exact_knn_shapley(data, 3)
    with ValuationService(engine, n_workers=3) as service:
        jobs = [
            service.submit_batch(data.x_test, data.y_test, tag=f"client-{i}")
            for i in range(8)
        ]
        for job in jobs:
            result = job.result(timeout=60)
            assert np.max(np.abs(result.values - reference.values)) < 1e-10
        stats = service.stats()
    assert stats["n_jobs"] == 8
    assert stats["by_status"] == {"done": 8}
    assert stats["total_compute_seconds"] > 0


def test_mixed_methods_in_one_queue(data, engine):
    with ValuationService(engine, n_workers=2) as service:
        exact = service.submit(
            ValuationRequest(data.x_test, data.y_test, method="exact")
        )
        trunc = service.submit(
            ValuationRequest(
                data.x_test, data.y_test, method="truncated", epsilon=0.2
            )
        )
        assert exact.result(timeout=60).method == "exact"
        assert trunc.result(timeout=60).method == "truncated"


def test_failed_job_reports_error_and_worker_survives(data, engine):
    with ValuationService(engine, n_workers=1) as service:
        bad = service.submit_batch(data.x_test[:, :2], data.y_test)
        with pytest.raises((ParameterError, DataValidationError)):
            bad.result(timeout=60)
        assert bad.status == "failed"
        # the worker that hit the failure keeps serving
        good = service.submit_batch(data.x_test, data.y_test)
        assert good.result(timeout=60).n == data.n_train
    assert service.stats()["by_status"]["failed"] == 1


def test_job_stats_and_lookup(data, engine):
    with ValuationService(engine, n_workers=1) as service:
        job = service.submit_batch(data.x_test, data.y_test, tag="abc")
        job.result(timeout=60)
        fetched = service.job(job.job_id)
        assert fetched is job
        s = job.stats()
        assert s["tag"] == "abc"
        assert s["status"] == "done"
        assert s["n_test"] == data.n_test
        assert s["queue_seconds"] >= 0
        assert s["compute_seconds"] > 0
        with pytest.raises(ParameterError):
            service.job(10**9)


def test_wait_all(data, engine):
    with ValuationService(engine, n_workers=2) as service:
        for _ in range(5):
            service.submit_batch(data.x_test, data.y_test)
        service.wait_all(timeout=120)
        assert service.stats()["by_status"] == {"done": 5}


def test_shutdown_without_wait_cancels_queued_jobs(data, engine, monkeypatch):
    real_value = engine.value

    def slow_value(*args, **kwargs):
        time.sleep(0.2)
        return real_value(*args, **kwargs)

    monkeypatch.setattr(engine, "value", slow_value)
    service = ValuationService(engine, n_workers=1)
    jobs = [service.submit_batch(data.x_test, data.y_test) for _ in range(4)]
    time.sleep(0.05)  # let the single worker pick up the first job
    service.shutdown(wait=False)
    assert all(job.done for job in jobs)
    statuses = {job.status for job in jobs}
    assert "cancelled" in statuses  # queued jobs were released, not served
    for job in jobs:
        if job.status == "cancelled":
            with pytest.raises(ParameterError):
                job.result(timeout=1)


def test_submit_after_shutdown_raises(data, engine):
    service = ValuationService(engine, n_workers=1)
    service.shutdown()
    with pytest.raises(ParameterError):
        service.submit_batch(data.x_test, data.y_test)
    service.shutdown()  # idempotent


def test_service_validates_workers(engine):
    with pytest.raises(ParameterError):
        ValuationService(engine, n_workers=0)


def test_shared_cache_across_jobs(data):
    engine = ValuationEngine(data.x_train, data.y_train, 3)
    with ValuationService(engine, n_workers=1) as service:
        service.submit_batch(data.x_test, data.y_test).result(timeout=60)
        second = service.submit_batch(data.x_test, data.y_test).result(timeout=60)
    assert second.extra["cache"]["hits"] >= 1


# ------------------------------------------------------------ mutation jobs
def test_mutation_jobs_ride_the_queue(data):
    from repro.engine import MutationRequest, MutationResult

    engine = ValuationEngine(data.x_train, data.y_train, 3)
    extra = data.x_train[:2] + 0.5
    # one worker: jobs apply strictly in submission order, so the
    # assertions below on sizes/indices are deterministic (with more
    # workers only atomicity is guaranteed — see the sibling
    # interleaving test)
    with ValuationService(engine, n_workers=1) as service:
        before = service.submit_batch(data.x_test, data.y_test).result(timeout=60)
        add = service.submit_add(extra, data.y_train[:2], tag="joiner")
        after = service.submit_batch(data.x_test, data.y_test)
        drop = service.submit_remove([0, 1], tag="leaver")
        added = add.result(timeout=60)
        assert isinstance(added, MutationResult)
        assert added.kind == "add"
        np.testing.assert_array_equal(added.indices, [150, 151])
        assert added.n_train == 152
        assert drop.result(timeout=60).n_train == 150
        assert add.stats()["method"] == "mutate-add"
        assert add.stats()["n_test"] == 0
    # the valuation after the add saw 152 training points
    assert after.result().values.shape[0] == 152
    assert before.values.shape[0] == 150
    assert engine.n_train == 150
    # request validation
    with pytest.raises(ParameterError):
        MutationRequest(kind="upsert")
    with pytest.raises(ParameterError):
        MutationRequest(kind="add")
    with pytest.raises(ParameterError):
        MutationRequest(kind="remove")


def test_mutations_interleaved_with_valuations_under_load(data):
    """Hammer one engine with valuations while a mutation lands; every
    result must reflect either the before- or after-state, never a
    torn one (the reader-writer lock keeps mutations atomic)."""
    from repro.core import exact_knn_shapley
    from repro.types import Dataset

    engine = ValuationEngine(data.x_train, data.y_train, 3, cache=False)
    with ValuationService(engine, n_workers=3) as service:
        jobs = [service.submit_batch(data.x_test, data.y_test) for _ in range(4)]
        mutation = service.submit_add(data.x_train[:1] + 1.0, data.y_train[:1])
        jobs += [service.submit_batch(data.x_test, data.y_test) for _ in range(4)]
        results = [j.result(timeout=120) for j in jobs]
        mutation.result(timeout=120)
    before = exact_knn_shapley(data, 3).values
    after_data = Dataset(
        np.vstack((data.x_train, data.x_train[:1] + 1.0)),
        np.concatenate((data.y_train, data.y_train[:1])),
        data.x_test,
        data.y_test,
    )
    after = exact_knn_shapley(after_data, 3).values
    for res in results:
        ref = before if res.values.shape[0] == 150 else after
        np.testing.assert_allclose(res.values, ref, rtol=0, atol=1e-12)


def test_failed_mutation_surfaces_via_result(data, engine):
    with ValuationService(engine, n_workers=1) as service:
        job = service.submit_remove([10_000])
        with pytest.raises(ParameterError):
            job.result(timeout=60)
        assert job.status == "failed"


def test_weighted_requests_ride_the_queue(data):
    from repro.core import exact_weighted_knn_shapley

    reference = exact_weighted_knn_shapley(data, 1, weights="inverse_distance")
    k1_engine = ValuationEngine(data.x_train, data.y_train, 1)
    with ValuationService(k1_engine, n_workers=2) as service:
        jobs = [
            service.submit(
                ValuationRequest(
                    data.x_test, data.y_test, method="weighted", tag=f"w{i}"
                )
            )
            for i in range(3)
        ]
        for job in jobs:
            result = job.result(timeout=120)
            assert result.method == "exact-weighted"
            np.testing.assert_allclose(
                result.values, reference.values, rtol=0, atol=1e-12
            )
