"""Tests for the pluggable neighbor backends and their registry."""

import warnings

import numpy as np
import pytest

from repro.engine import (
    BlockedExactBackend,
    BruteForceBackend,
    LSHNeighborBackend,
    NeighborBackend,
    available_backends,
    make_backend,
)
from repro.exceptions import NotFittedError, ParameterError
from repro.knn import argsort_by_distance, top_k


# ----------------------------------------------------------------- registry
def test_registry_lists_the_three_backends():
    names = available_backends()
    for name in ("brute", "blocked", "lsh"):
        assert name in names


def test_make_backend_by_name_and_options():
    b = make_backend("blocked", metric="cosine", block_size=7)
    assert isinstance(b, BlockedExactBackend)
    assert b.metric == "cosine"
    assert b.block_size == 7


def test_make_backend_passthrough_instance():
    inst = BruteForceBackend()
    assert make_backend(inst) is inst
    with pytest.raises(ParameterError):
        make_backend(inst, metric="cosine")


def test_make_backend_unknown_name():
    with pytest.raises(ParameterError):
        make_backend("kdtree")


# ----------------------------------------------------------------- exact
@pytest.mark.parametrize("metric", ["euclidean", "cosine"])
def test_brute_query_and_rank_match_reference(rng, metric):
    data = rng.standard_normal((60, 5))
    queries = rng.standard_normal((7, 5))
    backend = BruteForceBackend(metric=metric).fit(data)
    idx, dist = backend.query(queries, 9)
    ref_idx, ref_dist = top_k(queries, data, 9, metric=metric)
    np.testing.assert_array_equal(idx, ref_idx)
    np.testing.assert_allclose(dist, ref_dist)
    order = backend.rank(queries)
    ref_order, _ = argsort_by_distance(queries, data, metric=metric)
    np.testing.assert_array_equal(order, ref_order)


def test_blocked_matches_brute_across_block_boundaries(rng):
    data = rng.standard_normal((101, 4))
    queries = rng.standard_normal((9, 4))
    brute = BruteForceBackend().fit(data)
    blocked = BlockedExactBackend(block_size=17, query_block=4).fit(data)
    for k in (1, 5, 30, 150):
        bi, bd = brute.query(queries, k)
        ci, cd = blocked.query(queries, k)
        np.testing.assert_array_equal(bi, ci)
        np.testing.assert_allclose(bd, cd)
    np.testing.assert_array_equal(brute.rank(queries), blocked.rank(queries))


def test_blocked_tie_break_matches_brute():
    """Duplicated points straddling block boundaries keep index order."""
    base = np.arange(10, dtype=np.float64).reshape(-1, 1)
    data = np.vstack([base, base, base])  # 30 points, each distance x3
    queries = np.array([[2.5], [7.0]])
    brute = BruteForceBackend().fit(data)
    blocked = BlockedExactBackend(block_size=7, query_block=1).fit(data)
    bi, _ = brute.query(queries, 12)
    ci, _ = blocked.query(queries, 12)
    np.testing.assert_array_equal(bi, ci)
    np.testing.assert_array_equal(brute.rank(queries), blocked.rank(queries))


def test_backend_requires_fit(rng):
    backend = BruteForceBackend()
    with pytest.raises(NotFittedError):
        backend.query(rng.standard_normal((2, 3)), 1)
    with pytest.raises(ParameterError):
        BruteForceBackend().fit(np.empty((0, 3)))


def test_blocked_validates_parameters():
    with pytest.raises(ParameterError):
        BlockedExactBackend(block_size=0)
    with pytest.raises(ParameterError):
        BlockedExactBackend(query_block=-1)


def test_exact_backends_share_cache_token(rng):
    data = rng.standard_normal((10, 2))
    a = BruteForceBackend().fit(data)
    b = BlockedExactBackend().fit(data)
    assert a.cache_token() == b.cache_token()
    assert BruteForceBackend(metric="cosine").cache_token() != a.cache_token()


# ----------------------------------------------------------------- lsh
def test_lsh_full_recall_params_match_exact(rng, full_recall_params):
    data = rng.standard_normal((40, 6))
    queries = rng.standard_normal((5, 6))
    backend = LSHNeighborBackend(params=full_recall_params(), seed=0).fit(data)
    idx, dist = backend.query(queries, 8)
    ref_idx, ref_dist = top_k(queries, data, 8)
    for j in range(5):
        np.testing.assert_array_equal(idx[j], ref_idx[j])
        np.testing.assert_allclose(dist[j], ref_dist[j], atol=1e-9)


def test_lsh_prepare_without_queries_builds_index(rng):
    data = rng.standard_normal((50, 4))
    backend = LSHNeighborBackend(seed=1, tune_with_queries=False).fit(data)
    backend.prepare(None, 5)
    assert backend.params is not None
    idx, _ = backend.query(rng.standard_normal((3, 4)), 5)
    assert len(idx) == 3


def test_lsh_rejects_full_ranking(rng):
    backend = LSHNeighborBackend(seed=0).fit(rng.standard_normal((20, 3)))
    assert not backend.supports_full_ranking
    with pytest.raises(ParameterError):
        backend.rank(rng.standard_normal((2, 3)))


def test_lsh_validates_delta():
    with pytest.raises(ParameterError):
        LSHNeighborBackend(delta=0.0)
    with pytest.raises(ParameterError):
        LSHNeighborBackend(delta=1.0)


def test_lsh_cache_token_reflects_tuning(rng, full_recall_params):
    data = rng.standard_normal((30, 3))
    a = LSHNeighborBackend(params=full_recall_params(), seed=0).fit(data)
    b = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(data)
    b.prepare(None, 3)
    assert a.cache_token() != b.cache_token()


def test_custom_backend_registration(rng):
    from repro.engine import register_backend

    class EchoBackend(BruteForceBackend):
        name = "echo-test"

    register_backend("echo-test", EchoBackend)
    try:
        built = make_backend("echo-test")
        assert isinstance(built, EchoBackend)
        assert isinstance(built, NeighborBackend)
    finally:
        from repro.engine.backends import _BACKEND_REGISTRY

        _BACKEND_REGISTRY.pop("echo-test", None)


# -------------------------------------------------- mutation (partial_fit/forget)
@pytest.mark.parametrize("name", ["brute", "blocked"])
def test_exact_backend_partial_fit_equals_refit(rng, name):
    data = rng.standard_normal((25, 4))
    extra = rng.standard_normal((3, 4))
    queries = rng.standard_normal((4, 4))
    mutated = make_backend(name).fit(data)
    assert mutated.supports_incremental_mutation
    mutated.partial_fit(extra)
    refit = make_backend(name).fit(np.vstack((data, extra)))
    np.testing.assert_array_equal(mutated.rank(queries), refit.rank(queries))
    mi, md = mutated.query(queries, 5)
    ri, rd = refit.query(queries, 5)
    np.testing.assert_array_equal(mi, ri)
    np.testing.assert_array_equal(md, rd)


@pytest.mark.parametrize("name", ["brute", "blocked"])
def test_exact_backend_forget_equals_refit(rng, name):
    data = rng.standard_normal((25, 4))
    queries = rng.standard_normal((4, 4))
    doomed = [0, 7, 24]
    mutated = make_backend(name).fit(data)
    mutated.forget(doomed)
    refit = make_backend(name).fit(np.delete(data, doomed, axis=0))
    assert mutated.n == 22
    np.testing.assert_array_equal(mutated.rank(queries), refit.rank(queries))


@pytest.mark.parametrize("name", ["brute", "blocked"])
def test_rank_with_distances_consistent(rng, name):
    data = rng.standard_normal((30, 3))
    queries = rng.standard_normal((6, 3))
    backend = make_backend(name).fit(data)
    order, dist = backend.rank_with_distances(queries)
    np.testing.assert_array_equal(order, backend.rank(queries))
    assert np.all(np.diff(dist, axis=1) >= 0)  # ascending rows
    # distances belong to the returned order
    brute_order, brute_dist = make_backend("brute").fit(data).rank_with_distances(queries)
    np.testing.assert_array_equal(order, brute_order)
    np.testing.assert_array_equal(dist, brute_dist)


def test_forget_validates_indices(rng):
    backend = make_backend("brute").fit(rng.standard_normal((10, 2)))
    with pytest.raises(ParameterError):
        backend.forget([10])
    with pytest.raises(ParameterError):
        backend.forget([-1])
    with pytest.raises(ParameterError):
        backend.forget([2, 2])
    with pytest.raises(ParameterError):
        backend.forget(np.arange(10))  # cannot empty the index
    backend.forget([])  # no-op
    assert backend.n == 10


def test_partial_fit_validates_width(rng):
    backend = make_backend("brute").fit(rng.standard_normal((10, 2)))
    with pytest.raises(ParameterError):
        backend.partial_fit(rng.standard_normal((2, 5)))
    backend.partial_fit(np.empty((0, 2)))  # no-op
    assert backend.n == 10


def test_lsh_small_mutations_update_in_place(rng, full_recall_params):
    """Bounded churn is absorbed into the existing buckets: no warning,
    no rebuild, and (with full-recall tables) exact-equivalent results."""
    data = rng.standard_normal((40, 3))
    backend = LSHNeighborBackend(params=full_recall_params(3), seed=0).fit(data)
    backend.prepare(None, 5)
    index_before = backend._index
    assert index_before is not None
    assert backend.supports_incremental_mutation
    queries = rng.standard_normal((3, 3))

    extra = rng.standard_normal((2, 3))
    backend.partial_fit(extra)  # 5% growth: in place, warning-free
    assert backend.n == 42
    assert backend._index is index_before  # same tables, new buckets
    idx, dist = backend.query(queries, 5)
    oracle = make_backend("brute").fit(np.vstack((data, extra)))
    oi, od = oracle.query(queries, 5)
    for j in range(queries.shape[0]):
        np.testing.assert_array_equal(idx[j], oi[j])
        np.testing.assert_allclose(dist[j], od[j], atol=1e-12)

    doomed = [0, 41]  # one incumbent, one newcomer
    backend.forget(doomed)  # tombstoned, warning-free
    assert backend.n == 40
    assert backend._index is index_before
    idx, _ = backend.query(queries, 5)
    oracle = make_backend("brute").fit(
        np.delete(np.vstack((data, extra)), doomed, axis=0)
    )
    oi, _ = oracle.query(queries, 5)
    for j in range(queries.shape[0]):
        np.testing.assert_array_equal(idx[j], oi[j])


def test_lsh_mutation_beyond_drift_warns_and_refits(rng):
    data = rng.standard_normal((40, 3))
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(data)
    backend.prepare(None, 3)
    assert backend._index is not None
    with pytest.warns(RuntimeWarning, match="full refit"):
        backend.partial_fit(rng.standard_normal((12, 3)))  # 30% > 25% drift
    assert backend.n == 52
    assert backend._index is None  # rebuilt lazily on next query
    idx, _ = backend.query(rng.standard_normal((1, 3)), 3)
    assert backend._index is not None
    with pytest.warns(RuntimeWarning, match="full refit"):
        backend.forget(list(range(14)))  # shrink past the tuned band
    assert backend.n == 38


def test_lsh_balanced_churn_is_compacted_by_refit(rng, full_recall_params):
    """Tombstones and appends both leave rows in the tables, so
    balanced add/remove churn must eventually trip the drift refit —
    otherwise the index grows without bound while n stays constant."""
    data = rng.standard_normal((40, 3))
    backend = LSHNeighborBackend(params=full_recall_params(3), seed=0).fit(data)
    backend.prepare(None, 3)
    refitted = False
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for _ in range(12):
            backend.partial_fit(rng.standard_normal((2, 3)))
            backend.forget([0, 1])
            if any("full refit" in str(w.message) for w in caught):
                refitted = True
                break
    assert refitted, "internal index growth never triggered a compaction"
    assert backend.n == 40  # alive count untouched by the refit
    backend.prepare(None, 3)
    assert backend._index.n == 40  # rebuilt compact: tombstones reclaimed


def test_lsh_churn_changes_cache_token(rng, full_recall_params):
    data = rng.standard_normal((30, 3))
    backend = LSHNeighborBackend(params=full_recall_params(3), seed=0).fit(data)
    backend.prepare(None, 3)
    t0 = backend.cache_token()
    backend.partial_fit(rng.standard_normal((1, 3)))
    t1 = backend.cache_token()
    assert t0 != t1
    backend.forget([5])
    assert backend.cache_token() != t1
