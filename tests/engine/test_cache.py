"""Tests for fingerprinting and the rank/top-K memo cache."""

import numpy as np
import pytest

from repro.engine import RankCache, array_fingerprint, dataset_fingerprint
from repro.exceptions import ParameterError


# ----------------------------------------------------------- fingerprints
def test_fingerprint_is_content_addressed(rng):
    a = rng.standard_normal((8, 3))
    assert array_fingerprint(a) == array_fingerprint(a.copy())
    b = a.copy()
    b[4, 1] += 1e-12
    assert array_fingerprint(a) != array_fingerprint(b)


def test_fingerprint_sees_dtype_and_shape():
    a = np.zeros((4, 2))
    assert array_fingerprint(a) != array_fingerprint(a.astype(np.float32))
    assert array_fingerprint(a) != array_fingerprint(a.reshape(2, 4))


def test_fingerprint_of_views(rng):
    a = rng.standard_normal((10, 4))
    assert array_fingerprint(a[::2]) == array_fingerprint(a[::2].copy())


def test_dataset_fingerprint_combines_arrays_and_extras(rng):
    x, y = rng.standard_normal((5, 2)), rng.standard_normal((3, 2))
    fp = dataset_fingerprint(x, y, extra=("euclidean", 3))
    assert fp != dataset_fingerprint(x, y, extra=("cosine", 3))
    assert fp != dataset_fingerprint(y, x, extra=("euclidean", 3))
    assert fp == dataset_fingerprint(x, y, extra=("euclidean", 3))


# ----------------------------------------------------------------- cache
def test_ranking_roundtrip_and_stats(rng):
    cache = RankCache()
    order = rng.permutation(20).reshape(2, 10)
    assert cache.get_ranking("a") is None
    assert cache.put_ranking("a", order)
    hit = cache.get_ranking("a")
    np.testing.assert_array_equal(hit, order)
    assert not hit.flags.writeable
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_topk_served_from_prefix_and_full_ranking(rng):
    cache = RankCache()
    idx = np.arange(40).reshape(4, 10)
    cache.put_topk("t", 10, idx)
    np.testing.assert_array_equal(cache.get_topk("t", 4), idx[:, :4])
    assert cache.get_topk("t", 11) is None
    # a full ranking answers any k
    order = np.tile(np.arange(30), (3, 1))
    cache.put_ranking("r", order)
    np.testing.assert_array_equal(cache.get_topk("r", 12), order[:, :12])


def test_topk_keeps_widest_prefix():
    cache = RankCache()
    cache.put_topk("w", 8, np.zeros((2, 8), dtype=np.intp))
    cache.put_topk("w", 3, np.ones((2, 3), dtype=np.intp))
    got = cache.get_topk("w", 5)
    assert got.shape == (2, 5)
    assert got.sum() == 0  # the wider k=8 entry survived


def test_lru_eviction():
    cache = RankCache(max_entries=2)
    for key in ("a", "b", "c"):
        cache.put_ranking(key, np.zeros((1, 4), dtype=np.intp))
    assert cache.get_ranking("a") is None  # evicted
    assert cache.get_ranking("c") is not None
    assert cache.stats.evictions == 1
    assert len(cache) == 2


def test_oversized_rankings_are_not_stored():
    cache = RankCache(max_entry_elements=10)
    assert not cache.put_ranking("big", np.zeros((4, 4), dtype=np.intp))
    assert cache.get_ranking("big") is None
    assert len(cache) == 0


def test_clear_keeps_stats():
    cache = RankCache()
    cache.put_ranking("x", np.zeros((1, 2), dtype=np.intp))
    cache.get_ranking("x")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_validates_max_entries():
    with pytest.raises(ParameterError):
        RankCache(max_entries=0)


# ------------------------------------------------- fingerprint invalidation
def test_invalidate_single_fingerprint():
    cache = RankCache()
    order = np.zeros((1, 4), dtype=np.intp)
    cache.put_ranking(("train-a", "test-1", "exact"), order)
    cache.put_ranking(("train-a", "test-2", "exact"), order)
    cache.put_ranking(("train-b", "test-1", "exact"), order)
    cache.put_ranking("train-a", order)  # bare-string key
    assert cache.invalidate("train-a") == 3
    # only the other training set's entry survives
    assert len(cache) == 1
    assert cache.get_ranking(("train-b", "test-1", "exact")) is not None
    assert cache.stats.invalidations == 3


def test_invalidate_matches_string_keys_by_substring():
    cache = RankCache()
    order = np.zeros((1, 3), dtype=np.intp)
    cache.put_ranking("abc123|test", order)
    cache.put_ranking("zzz999|test", order)
    assert cache.invalidate("abc123") == 1
    assert len(cache) == 1


def test_invalidate_missing_fingerprint_is_noop():
    cache = RankCache()
    cache.put_ranking("k", np.zeros((1, 2), dtype=np.intp))
    assert cache.invalidate("absent") == 0
    assert len(cache) == 1
    assert cache.stats.invalidations == 0


def test_engine_mutation_evicts_only_its_training_set(rng):
    """Invalidation under mutation: a shared cache keeps entries for
    other engines' training sets when one engine's data churns."""
    from repro.engine import ValuationEngine

    x1, y1 = rng.standard_normal((40, 4)), rng.integers(0, 2, 40)
    x2, y2 = rng.standard_normal((30, 4)), rng.integers(0, 2, 30)
    xt, yt = rng.standard_normal((5, 4)), rng.integers(0, 2, 5)
    shared = RankCache()
    eng1 = ValuationEngine(x1, y1, 3, cache=shared)
    eng2 = ValuationEngine(x2, y2, 3, cache=shared)
    eng1.value(xt, yt)
    eng2.value(xt, yt)
    assert len(shared) == 2
    eng1.add_points(rng.standard_normal((1, 4)), [1])
    # only eng1's ranking was evicted
    assert len(shared) == 1
    hits_before = shared.stats.hits
    eng2.value(xt, yt)
    assert shared.stats.hits == hits_before + 1
    # eng1 revalues against the mutated set and repopulates the cache
    eng1.value(xt, yt)
    assert len(shared) == 2
