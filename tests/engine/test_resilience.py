"""Chaos suite: the degradation ladder, breakers, and fault recovery.

Every resilience claim the serving layer makes is exercised here
against injected faults (:class:`repro.monitor.FaultInjector`):
overload engages the precision ladder rung by rung, every degraded
answer stays within its published certificate against the exact
oracle, serving returns to exact once the fault clears, deadlines
propagate across the shard fan-out, circuit breakers walk their full
closed → open → half-open → closed lifecycle, and no shutdown path
can strand a caller.
"""

import time

import numpy as np
import pytest

from repro.core import exact_knn_shapley
from repro.engine import (
    DEFAULT_LADDER,
    DegradationController,
    ShardRouter,
    ValuationEngine,
    ValuationRequest,
    ValuationService,
)
from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    ParameterError,
    ShardError,
)
from repro.monitor import (
    AlertManager,
    FaultInjector,
    ObservabilityServer,
    SLOTracker,
    TelemetryHub,
    service_rules,
)

K = 3


@pytest.fixture(scope="module")
def data():
    from repro.datasets import gaussian_blobs

    return gaussian_blobs(n_train=150, n_test=10, n_features=6, seed=7)


@pytest.fixture(scope="module")
def oracle(data):
    return exact_knn_shapley(data, K).values


@pytest.fixture()
def engine(data):
    return ValuationEngine(data.x_train, data.y_train, K)


# ---------------------------------------------------------------------------
# the ladder's rungs keep their certificates
# ---------------------------------------------------------------------------


def test_mc_method_stays_within_certificate(data, engine, oracle):
    result = engine.value(
        data.x_test, data.y_test, method="mc", epsilon=0.3, delta=0.05, seed=11
    )
    assert result.method == "mc"
    cert = result.extra["certificate"]
    assert cert["bound"] == "bennett-theorem5"
    assert cert["epsilon"] == pytest.approx(0.3)
    err = np.max(np.abs(result.values - oracle))
    assert err <= cert["epsilon"]


def test_mc_explicit_budget_inverts_certificate(data, engine, oracle):
    result = engine.value(
        data.x_test,
        data.y_test,
        method="mc",
        n_permutations=200,
        delta=0.05,
        seed=5,
    )
    cert = result.extra["certificate"]
    assert cert["n_permutations"] == 200
    # the certified epsilon is the smallest Theorem-5 target whose
    # budget fits 200 permutations — and the realized error honors it
    assert 0 < cert["epsilon"] < 1
    assert np.max(np.abs(result.values - oracle)) <= cert["epsilon"]


def test_every_non_exact_rung_certificate_holds(data, engine, oracle):
    for rung in DEFAULT_LADDER[1:]:
        kwargs = {"method": rung.method, "epsilon": rung.epsilon}
        if rung.method == "mc":
            kwargs.update(delta=rung.delta, seed=3)
        result = engine.value(data.x_test, data.y_test, **kwargs)
        err = np.max(np.abs(result.values - oracle))
        assert err <= rung.epsilon + 1e-12, (rung.name, err)


# ---------------------------------------------------------------------------
# the controller: pressure mapping, recovery rule, deadline escalation
# ---------------------------------------------------------------------------


def test_controller_maps_pressure_to_rungs():
    ctl = DegradationController(queue_low=1, queue_high=9)
    assert ctl.plan(0)[0].name == "exact"
    assert ctl.plan(1)[0].name == "exact"  # at queue_low: still exact
    names = [ctl.plan(d)[0].name for d in (2, 5, 9, 50)]
    assert names[0] == "truncated-fine"
    assert names[-1] == "mc"
    # monotone: deeper queue never picks a more precise rung
    order = [r.name for r in ctl.ladder]
    assert [order.index(n) for n in names] == sorted(
        order.index(n) for n in names
    )


def test_controller_recovery_rule_ignores_stale_burn():
    class Burny:
        def worst_burn(self):
            return 100.0

    ctl = DegradationController(slo=Burny(), queue_low=1, queue_high=8)
    # under pressure the burn signal holds the ladder down
    assert ctl.plan(4)[0].name != "exact"
    # but an idle queue serves exact immediately, burn history or not
    rung, info = ctl.plan(0)
    assert rung.name == "exact"
    assert info["burn_pressure"] == 0.0


def test_controller_deadline_escalation_steps_down():
    ctl = DegradationController(queue_low=1, queue_high=9)
    ctl.observe("truncated-fine", 10.0)  # EWMA: this rung takes ~10s
    rung, info = ctl.plan(2, deadline_s=0.5)
    assert rung.name != "truncated-fine"
    assert info.get("deadline_escalated") is True


def test_controller_rejects_bad_ladders():
    from repro.engine import PrecisionRung

    with pytest.raises(ParameterError):
        DegradationController(ladder=())
    with pytest.raises(ParameterError):
        DegradationController(
            ladder=(PrecisionRung("mc", "mc", epsilon=0.5),)
        )
    with pytest.raises(ParameterError):
        DegradationController(queue_low=5, queue_high=5)


# ---------------------------------------------------------------------------
# overload: the service engages the ladder, then recovers to exact
# ---------------------------------------------------------------------------


def test_overload_engages_ladder_and_recovers(data, engine, oracle):
    ctl = DegradationController(queue_low=1, queue_high=6)
    with ValuationService(
        engine, n_workers=1, degradation=ctl
    ) as service, FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.08, times=3)
        jobs = [
            service.submit(ValuationRequest(data.x_test, data.y_test))
            for _ in range(10)
        ]
        results = [j.result(timeout=60) for j in jobs]
        # fault cleared and queue drained: an idle submission is exact
        calm = service.submit(
            ValuationRequest(data.x_test, data.y_test)
        ).result(timeout=60)

    degraded = [r for r in results if "degraded" in r.extra]
    assert degraded, "overload never engaged the ladder"
    rungs = {r.extra["degraded"]["rung"] for r in degraded}
    assert rungs & {"truncated-fine", "truncated-coarse", "mc"}
    # every degraded answer carries a certificate and honors it
    for r in degraded:
        cert = r.extra["degraded"]["certificate"]
        assert cert["epsilon"] > 0
        assert np.max(np.abs(r.values - oracle)) <= cert["epsilon"] + 1e-12
    # recovery: the post-fault request is exact and unmarked
    assert "degraded" not in calm.extra
    assert np.max(np.abs(calm.values - oracle)) < 1e-10
    picks = ctl.snapshot()["picks"]
    assert picks["exact"] >= 1


def test_degradation_skips_explicitly_non_exact_requests(data, engine):
    ctl = DegradationController(queue_low=0, queue_high=2)
    with ValuationService(
        engine, n_workers=1, degradation=ctl
    ) as service, FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.05, times=2)
        jobs = [
            service.submit(
                ValuationRequest(
                    data.x_test, data.y_test, method="truncated", epsilon=0.1
                )
            )
            for _ in range(4)
        ]
        for j in jobs:
            r = j.result(timeout=60)
            # the caller asked for truncated(0.1); the ladder must not
            # silently swap in a looser rung
            assert r.extra["epsilon"] == pytest.approx(0.1)
            assert "degraded" not in r.extra


# ---------------------------------------------------------------------------
# admission control and deadlines at the queue
# ---------------------------------------------------------------------------


def test_shed_admission_rejects_typed_and_reports(data, engine):
    with ValuationService(
        engine, n_workers=1, max_queue=2, admission="shed"
    ) as service, FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.1)
        accepted, rejections = [], []
        for _ in range(8):
            try:
                accepted.append(
                    service.submit(ValuationRequest(data.x_test, data.y_test))
                )
            except AdmissionRejectedError as exc:
                rejections.append(exc)
        assert rejections, "a bounded queue never shed"
        assert rejections[0].max_queue == 2
        res = service.resilience()
        assert res["shedding"] is True
        assert res["sheds"] == len(rejections)
        stats = service.stats()
        assert stats["counters"]["jobs_shed"] == len(rejections)
        for job in accepted:
            job.result(timeout=60)


def test_deadline_missed_in_queue_fails_typed(data, engine):
    with ValuationService(engine, n_workers=1) as service, FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.25, times=1)
        blocker = service.submit(ValuationRequest(data.x_test, data.y_test))
        doomed = service.submit(
            ValuationRequest(data.x_test, data.y_test, deadline_ms=50)
        )
        blocker.result(timeout=60)
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=60)
        assert doomed.status == "failed"
        assert service.stats()["counters"]["jobs_deadline_exceeded"] == 1


def test_priority_jumps_the_queue(data, engine):
    with ValuationService(engine, n_workers=1) as service, FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.15, times=1)
        service.submit(ValuationRequest(data.x_test, data.y_test))
        time.sleep(0.03)  # let the worker pick the blocker up
        low = service.submit(
            ValuationRequest(data.x_test, data.y_test, priority=0)
        )
        high = service.submit(
            ValuationRequest(data.x_test, data.y_test, priority=10)
        )
        low.result(timeout=60)
        high.result(timeout=60)
    assert high.finished_at < low.finished_at


def test_engine_deadline_raises_typed(data, engine):
    with pytest.raises(DeadlineExceededError):
        engine.value(data.x_test, data.y_test, deadline_s=0.0)


# ---------------------------------------------------------------------------
# router: deadline propagation, breakers, hedging under a slow shard
# ---------------------------------------------------------------------------


def _router(data, **kwargs):
    defaults = dict(
        n_shards=4,
        sharding="test",
        hedge=False,
        max_retries=0,
        shard_timeout=30.0,
    )
    defaults.update(kwargs)
    return ShardRouter(data.x_train, data.y_train, k=K, **defaults)


def test_deadline_propagates_across_shard_fanout(data):
    router = _router(data)
    try:
        with FaultInjector() as chaos:
            for i in range(4):
                chaos.slow_shard(router, i, 0.4)
            t0 = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                router.value(data.x_test, data.y_test, deadline_s=0.15)
            elapsed = time.perf_counter() - t0
        # the deadline cut the request short instead of waiting out
        # every slow leg serially
        assert elapsed < 2.0
        # a deadline miss is the request's fault, not the shards':
        # no breaker may trip over it
        assert router.resilience()["open_circuits"] == []
        assert router.stats()["counters"]["deadline_exceeded"] >= 1
    finally:
        router.close()


def test_breaker_full_lifecycle_with_fake_clock(data):
    clk = {"t": 0.0}
    router = _router(
        data,
        n_shards=2,
        on_shard_error="partial",
        breaker_threshold=2,
        breaker_cooldown=10.0,
        breaker_clock=lambda: clk["t"],
    )
    try:
        with FaultInjector() as chaos:
            chaos.fail_shard(router, 1, times=2)
            for _ in range(2):
                router.value(data.x_test, data.y_test)
            assert router.resilience()["breakers"]["shard1"] == "open"
            # while open the shard is skipped without being called
            r = router.value(data.x_test, data.y_test)
            assert "circuit open" in str(
                r.extra["degraded"]["reasons"]["shard1"]
            )
        clk["t"] = 11.0  # past the cooldown: half-open admits a probe
        assert router.resilience()["breakers"]["shard1"] == "half-open"
        healed = router.value(data.x_test, data.y_test)
        assert router.resilience()["breakers"]["shard1"] == "closed"
        assert "degraded" not in healed.extra
    finally:
        router.close()


def test_failing_shard_errors_are_typed(data):
    router = _router(data, n_shards=2, on_shard_error="fail")
    try:
        with FaultInjector() as chaos:
            chaos.fail_shard(router, 0, times=1)
            with pytest.raises(ShardError):
                router.value(data.x_test, data.y_test)
        # fault expired: the very next request serves clean
        result = router.value(data.x_test, data.y_test)
        assert "degraded" not in result.extra
    finally:
        router.close()


def test_router_mc_certificate_survives_sharding(data, oracle):
    router = _router(data, n_shards=3, sharding="data")
    try:
        result = router.value(
            data.x_test, data.y_test, method="mc", epsilon=0.3, delta=0.05,
            seed=17,
        )
        cert = result.extra["certificate"]
        assert cert["bound"] == "bennett-theorem5"
        assert np.max(np.abs(result.values - oracle)) <= cert["epsilon"]
    finally:
        router.close()


# ---------------------------------------------------------------------------
# shutdown can never strand a caller
# ---------------------------------------------------------------------------


def test_crashed_workers_fail_backlog_typed(data, engine):
    service = ValuationService(engine, n_workers=2)
    with FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.15, times=2)
        running = [
            service.submit(ValuationRequest(data.x_test, data.y_test))
            for _ in range(2)
        ]
        time.sleep(0.04)
        queued = service.submit(ValuationRequest(data.x_test, data.y_test))
        chaos.crash_workers(service)
    t0 = time.perf_counter()
    service.shutdown(wait=True)  # must not hang on the dead pool
    assert time.perf_counter() - t0 < 5.0
    with pytest.raises(AdmissionRejectedError):
        queued.result(timeout=5)
    for job in running:
        job.result(timeout=5)  # picked up before the crash: served


def test_dropped_job_is_settled_by_shutdown(data, engine):
    service = ValuationService(engine, n_workers=1)
    with FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.15, times=1)
        service.submit(ValuationRequest(data.x_test, data.y_test))
        time.sleep(0.03)
        victim = service.submit(ValuationRequest(data.x_test, data.y_test))
        orphan = chaos.drop_job(service)
        assert orphan is victim
    service.shutdown(wait=True)
    with pytest.raises(AdmissionRejectedError):
        victim.result(timeout=5)
    assert victim.status == "failed"


def test_dropped_job_behind_survivors_keeps_shutdown_converging(data, engine):
    # the drop steals the queue head and re-enqueues everything behind
    # it; a task-accounting slip there deadlocks shutdown(wait=True)
    service = ValuationService(engine, n_workers=1)
    with FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.15, times=1)
        blocker = service.submit(ValuationRequest(data.x_test, data.y_test))
        time.sleep(0.03)  # let the worker dequeue the blocker
        victim = service.submit(ValuationRequest(data.x_test, data.y_test))
        survivor = service.submit(ValuationRequest(data.x_test, data.y_test))
        orphan = chaos.drop_job(service)
        assert orphan is victim
    start = time.perf_counter()
    service.shutdown(wait=True)
    assert time.perf_counter() - start < 30.0
    assert blocker.result(timeout=5).values is not None
    assert survivor.result(timeout=5).values is not None
    with pytest.raises(AdmissionRejectedError):
        victim.result(timeout=5)
    assert victim.status == "failed"


# ---------------------------------------------------------------------------
# observability: readiness flips, alerts fire, clocks may skew
# ---------------------------------------------------------------------------


def test_ready_returns_503_while_shedding_or_circuit_open(data, engine):
    import json
    import urllib.error
    import urllib.request

    with ValuationService(
        engine, n_workers=1, max_queue=1, admission="shed"
    ) as service, FaultInjector() as chaos:
        chaos.slow_engine(engine, 0.2)
        kept = []
        for _ in range(5):
            try:
                kept.append(
                    service.submit(ValuationRequest(data.x_test, data.y_test))
                )
            except AdmissionRejectedError:
                pass
        with ObservabilityServer(target=service) as srv:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(srv.url + "/ready")
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read())
            assert "shedding" in body["reason"]
        for job in kept:
            job.result(timeout=60)


def test_service_rules_fire_on_sustained_shedding(data, engine):
    hub = TelemetryHub()
    engine.attach_telemetry(hub)
    manager = AlertManager(hub, rules=service_rules())
    with ValuationService(
        engine, n_workers=1, max_queue=1, admission="shed"
    ) as service, FaultInjector() as chaos:
        manager.evaluate()  # seed counter baselines
        chaos.slow_engine(engine, 0.15)
        kept = []
        for _ in range(6):
            try:
                kept.append(
                    service.submit(ValuationRequest(data.x_test, data.y_test))
                )
            except AdmissionRejectedError:
                pass
        fired = {n["name"]: n for n in manager.evaluate()}
        assert "service.shedding" in fired
        assert fired["service.shedding"]["severity"] == "critical"
        for job in kept:
            job.result(timeout=60)


def test_clock_skew_cannot_wedge_the_ladder_down(data, engine):
    hub = TelemetryHub()
    slo = SLOTracker(hub)
    ctl = DegradationController(slo=slo, queue_low=1, queue_high=6)
    with FaultInjector() as chaos:
        chaos.skew_clock(slo, 3600.0)
        # even with the SLO clock an hour ahead, an idle queue serves
        # exact: the recovery rule consults depth before burn
        rung, info = ctl.plan(0)
        assert rung.name == "exact"
        assert info["pressure"] == 0.0
    assert abs(slo.clock() - time.monotonic()) < 1.0


def test_fault_injector_restores_and_reports(engine, data):
    chaos = FaultInjector()
    chaos.slow_engine(engine, 0.0, times=1)
    labels = [f["label"] for f in chaos.active()]
    assert any("slow_engine" in label for label in labels)
    chaos.clear()
    assert chaos.active() == []
    assert "value" not in vars(engine)
    with pytest.raises(ParameterError):
        chaos.slow_shard(object(), 0, 1.0)
