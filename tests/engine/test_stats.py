"""The unified component-stats schema across the serving stack.

Satellite of the monitoring PR: every observable component — rank
cache, engine, service, backends, incremental valuator, telemetry hub,
maintenance scheduler — answers ``stats()`` with the same dict shape
(:mod:`repro.stats`), so the hub consumes any of them uniformly.
"""

import numpy as np
import pytest

from repro.datasets import gaussian_blobs
from repro.engine import (
    BlockedExactBackend,
    BruteForceBackend,
    IncrementalValuator,
    LSHNeighborBackend,
    RankCache,
    ValuationEngine,
    ValuationService,
    ValuationRequest,
)
from repro.monitor import MaintenanceScheduler, TelemetryHub
from repro.stats import STATS_SCHEMA_KEYS, component_stats


def _assert_schema(stats: dict) -> None:
    for key in STATS_SCHEMA_KEYS:
        assert key in stats, f"missing schema key {key!r}"
    assert isinstance(stats["component"], str) and stats["component"]
    assert all(isinstance(v, int) for v in stats["counters"].values())
    assert all(isinstance(v, float) for v in stats["timings"].values())


@pytest.fixture(scope="module")
def served_engine():
    data = gaussian_blobs(n_train=300, n_test=16, n_features=6, seed=0)
    engine = ValuationEngine(data.x_train, data.y_train, 3)
    engine.value(data.x_test, data.y_test)
    engine.value(data.x_test, data.y_test)  # cache hit
    return engine, data


def test_component_stats_helper():
    stats = component_stats("x", counters={"a": 1}, extra_key="kept")
    _assert_schema(stats)
    assert stats["extra_key"] == "kept"
    assert stats["gauges"] == {}


def test_rank_cache_stats_callable_and_attribute():
    cache = RankCache(max_entries=4)
    cache.put_ranking("k1", np.arange(6).reshape(2, 3))
    cache.get_ranking("k1")
    cache.get_ranking("missing")
    # attribute reads keep working (the pre-schema surface)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    # calling it yields the unified schema
    stats = cache.stats()
    _assert_schema(stats)
    assert stats["component"] == "rank_cache"
    assert stats["counters"] == {
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "invalidations": 0,
    }
    assert stats["gauges"]["entries"] == 1
    assert stats["gauges"]["max_entries"] == 4


def test_engine_stats_counts_requests_and_merge_timings(served_engine):
    engine, _ = served_engine
    stats = engine.stats()
    _assert_schema(stats)
    assert stats["component"] == "valuation_engine"
    assert stats["counters"]["requests"] == 2
    assert stats["counters"]["chunks"] >= 2
    assert stats["timings"]["merge_seconds"] >= 0.0
    assert stats["timings"]["compute_seconds"] >= stats["timings"]["merge_seconds"]
    assert stats["timings"]["last_request_seconds"] > 0.0
    # the nested cache / backend snapshots follow the same schema
    _assert_schema(stats["cache"])
    _assert_schema(stats["backend"])
    assert stats["backend"]["component"] == "backend.brute"
    assert stats["backend"]["counters"]["queries"] >= 16


def test_backend_stats_all_kinds():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((80, 4))
    q = rng.standard_normal((5, 4))
    for backend in (
        BruteForceBackend(),
        BlockedExactBackend(block_size=32, query_block=2),
        LSHNeighborBackend(seed=0, tune_with_queries=False),
    ):
        backend.fit(x)
        backend.query(q, 3)
        stats = backend.stats()
        _assert_schema(stats)
        assert stats["component"] == f"backend.{backend.name}"
        assert stats["counters"]["queries"] == 5
        assert stats["counters"]["fits"] == 1
        assert stats["gauges"]["n"] == 80


def test_lsh_backend_stats_gauges():
    rng = np.random.default_rng(1)
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(
        rng.standard_normal((90, 4))
    )
    backend.prepare(None, 3)
    backend.forget(np.arange(9))
    stats = backend.stats()
    gauges = stats["gauges"]
    assert gauges["tuned_n"] == 90
    assert gauges["built_k"] == 3
    assert gauges["internal_n"] == 90
    assert gauges["n_alive"] == 81
    assert gauges["tombstone_ratio"] == pytest.approx(0.1)
    assert gauges["n_tables"] >= 1
    assert stats["timings"]["build_seconds"] > 0.0


def test_service_stats_schema_plus_legacy_keys():
    data = gaussian_blobs(n_train=120, n_test=8, n_features=4, seed=1)
    engine = ValuationEngine(data.x_train, data.y_train, 3)
    with ValuationService(engine, n_workers=1) as service:
        job = service.submit(ValuationRequest(data.x_test, data.y_test))
        job.result(timeout=60)
        stats = service.stats()
    _assert_schema(stats)
    assert stats["component"] == "valuation_service"
    assert stats["counters"]["jobs"] == 1
    assert stats["counters"]["jobs_done"] == 1
    # the pre-schema keys stay for existing dashboards
    assert stats["n_jobs"] == 1
    assert stats["by_status"] == {"done": 1}
    assert stats["timings"]["total_compute_seconds"] > 0.0


def test_incremental_stats():
    data = gaussian_blobs(n_train=100, n_test=8, n_features=4, seed=2)
    valuator = IncrementalValuator(data.x_train, data.y_train, 3)
    valuator.fit(data.x_test, data.y_test)
    idx = valuator.add_points(np.zeros((1, 4)), [0])
    valuator.remove_points(idx)
    stats = valuator.stats()
    _assert_schema(stats)
    assert stats["counters"]["mutations"] == 2
    assert stats["timings"]["total_mutation_seconds"] > 0.0
    _assert_schema(stats["backend"])


def test_hub_consumes_every_component_uniformly(served_engine):
    engine, data = served_engine
    hub = TelemetryHub()
    sched = MaintenanceScheduler(engine=engine, hub=hub, interval=100.0)
    for stats in (
        engine.stats(),
        engine.cache.stats(),
        engine.backend.stats(),
        sched.stats(),
        hub.stats(),
    ):
        hub.consume(stats)
    assert hub.component("valuation_engine")["counters"]["requests"] >= 2
    assert hub.component("rank_cache") is not None
    assert hub.component("backend.brute") is not None
    assert hub.component("maintenance_scheduler") is not None


def test_telemetry_attach_streams_engine_and_backend(served_engine):
    data = gaussian_blobs(n_train=150, n_test=8, n_features=4, seed=3)
    engine = ValuationEngine(data.x_train, data.y_train, 3)
    hub = TelemetryHub()
    engine.attach_telemetry(hub)
    engine.value(data.x_test, data.y_test)
    assert hub.n_recorded("engine.request_seconds") == 1
    assert hub.n_recorded("engine.merge_seconds") == 1
    assert hub.n_recorded("backend.brute.query_seconds") >= 1
    engine.add_points(np.zeros((1, 4)), [0])
    assert hub.counter("engine.mutations") == 1


def test_service_publishes_job_latency_when_hub_attached():
    data = gaussian_blobs(n_train=120, n_test=8, n_features=4, seed=4)
    engine = ValuationEngine(data.x_train, data.y_train, 3)
    hub = TelemetryHub()
    engine.attach_telemetry(hub)
    with ValuationService(engine, n_workers=1) as service:
        service.submit(ValuationRequest(data.x_test, data.y_test)).result(60)
    assert hub.counter("service.jobs_done") == 1
    assert hub.n_recorded("service.compute_seconds") == 1
    assert hub.n_recorded("service.queue_seconds") == 1
