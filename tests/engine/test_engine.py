"""Tests for the chunked, cached, parallel ValuationEngine."""

import numpy as np
import pytest

from repro.core import (
    exact_knn_regression_shapley,
    exact_knn_shapley,
    truncated_knn_shapley,
)
from repro.engine import RankCache, ValuationEngine
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def data():
    from repro.datasets import gaussian_blobs

    return gaussian_blobs(n_train=350, n_test=23, n_features=12, seed=91)


# ----------------------------------------------------------------- exact
@pytest.mark.parametrize("backend", ["brute", "blocked"])
@pytest.mark.parametrize("chunk_size", [None, 1, 7])
def test_exact_matches_reference_all_backends(data, backend, chunk_size):
    reference = exact_knn_shapley(data, 4)
    engine = ValuationEngine(
        data.x_train,
        data.y_train,
        4,
        backend=backend,
        chunk_size=chunk_size,
        backend_options={"block_size": 64} if backend == "blocked" else None,
    )
    result = engine.value(data.x_test, data.y_test, method="exact")
    assert np.max(np.abs(result.values - reference.values)) < 1e-10
    assert result.method == "exact"
    assert result.extra["backend"] == backend


def test_exact_lsh_full_recall_matches_reference(data, full_recall_params):
    """The acceptance bar: the LSH backend on its exact path (K* >= N,
    degenerate single-bucket tables) reproduces Theorem 1 to 1e-10."""
    reference = exact_knn_shapley(data, 4)
    engine = ValuationEngine(
        data.x_train,
        data.y_train,
        4,
        backend="lsh",
        backend_options={"params": full_recall_params(4), "seed": 0},
    )
    result = engine.value(
        data.x_test, data.y_test, method="lsh", epsilon=1.0 / data.n_train
    )
    assert np.max(np.abs(result.values - reference.values)) < 1e-10


def test_exact_regression_matches_reference():
    from repro.datasets import regression_dataset

    data = regression_dataset(n_train=60, n_test=9, n_features=4, seed=92)
    reference = exact_knn_regression_shapley(data, 3)
    engine = ValuationEngine(
        data.x_train, data.y_train, 3, task="regression", chunk_size=4
    )
    result = engine.value(data.x_test, data.y_test, method="exact")
    assert np.max(np.abs(result.values - reference.values)) < 1e-10
    assert result.method == "exact-regression"


def test_parallel_chunks_are_deterministic(data):
    base = ValuationEngine(
        data.x_train, data.y_train, 3, chunk_size=5, n_workers=1
    ).value(data.x_test, data.y_test)
    threaded = ValuationEngine(
        data.x_train, data.y_train, 3, chunk_size=5, n_workers=3, cache=False
    ).value(data.x_test, data.y_test)
    np.testing.assert_array_equal(base.values, threaded.values)
    assert threaded.extra["n_chunks"] == 5


def test_store_per_test_matches_reference(data):
    reference = exact_knn_shapley(data, 2)
    result = ValuationEngine(data.x_train, data.y_train, 2, chunk_size=6).value(
        data.x_test, data.y_test, store_per_test=True
    )
    np.testing.assert_allclose(
        result.extra["per_test"], reference.extra["per_test"], atol=1e-12
    )


# ------------------------------------------------------------- truncated
def test_truncated_matches_reference(data):
    reference = truncated_knn_shapley(data, 3, 0.1)
    engine = ValuationEngine(data.x_train, data.y_train, 3, chunk_size=8)
    result = engine.value(data.x_test, data.y_test, method="truncated", epsilon=0.1)
    np.testing.assert_allclose(result.values, reference.values, atol=1e-12)
    assert result.method == "truncated"
    assert result.extra["k_star"] == reference.extra["k_star"]


def test_truncated_blocked_matches_brute(data):
    brute = ValuationEngine(data.x_train, data.y_train, 3).value(
        data.x_test, data.y_test, method="truncated", epsilon=0.2
    )
    blocked = ValuationEngine(
        data.x_train,
        data.y_train,
        3,
        backend="blocked",
        backend_options={"block_size": 50},
    ).value(data.x_test, data.y_test, method="truncated", epsilon=0.2)
    np.testing.assert_array_equal(brute.values, blocked.values)


# ----------------------------------------------------------------- cache
def test_repeated_valuation_hits_the_cache(data):
    engine = ValuationEngine(data.x_train, data.y_train, 5)
    first = engine.value(data.x_test, data.y_test)
    assert first.extra["cache"]["hits"] == 0
    second = engine.value(data.x_test, data.y_test)
    assert second.extra["cache"]["hits"] == 1
    np.testing.assert_array_equal(first.values, second.values)
    # the ranking does not depend on labels or K: changing K still hits
    engine.k = 7
    third = engine.value(data.x_test, data.y_test)
    assert third.extra["cache"]["hits"] == 2
    reference = exact_knn_shapley(data, 7)
    assert np.max(np.abs(third.values - reference.values)) < 1e-10


def test_truncated_topk_cache_roundtrip(data):
    engine = ValuationEngine(data.x_train, data.y_train, 3)
    a = engine.value(data.x_test, data.y_test, method="truncated", epsilon=0.1)
    b = engine.value(data.x_test, data.y_test, method="truncated", epsilon=0.1)
    assert b.extra["cache"]["hits"] >= 1
    np.testing.assert_array_equal(a.values, b.values)
    # a smaller k_star is a prefix of the cached top-K*
    c = engine.value(data.x_test, data.y_test, method="truncated", epsilon=0.2)
    reference = truncated_knn_shapley(data, 3, 0.2)
    np.testing.assert_allclose(c.values, reference.values, atol=1e-12)


def test_shared_cache_across_engines(data):
    shared = RankCache()
    a = ValuationEngine(data.x_train, data.y_train, 2, cache=shared)
    b = ValuationEngine(data.x_train, data.y_train, 2, cache=shared)
    a.value(data.x_test, data.y_test)
    result = b.value(data.x_test, data.y_test)
    assert shared.stats.hits == 1
    reference = exact_knn_shapley(data, 2)
    assert np.max(np.abs(result.values - reference.values)) < 1e-10


def test_cache_disabled(data):
    engine = ValuationEngine(data.x_train, data.y_train, 2, cache=False)
    result = engine.value(data.x_test, data.y_test)
    assert result.extra["cache"] is None


# ----------------------------------------------------------- validation
def test_engine_validates_construction(data):
    with pytest.raises(ParameterError):
        ValuationEngine(data.x_train, data.y_train, 0)
    with pytest.raises(ParameterError):
        ValuationEngine(data.x_train, data.y_train, 1, task="ranking")
    with pytest.raises(ParameterError):
        ValuationEngine(data.x_train, data.y_train, 1, n_workers=0)
    with pytest.raises(ParameterError):
        ValuationEngine(data.x_train, data.y_train, 1, chunk_size=0)
    with pytest.raises(ParameterError):
        ValuationEngine(data.x_train, data.y_train, 1, backend="lsh", metric="cosine")


def test_engine_validates_method_routing(data, full_recall_params):
    engine = ValuationEngine(data.x_train, data.y_train, 2)
    with pytest.raises(ParameterError):
        engine.value(data.x_test, data.y_test, method="montecarlo")
    with pytest.raises(ParameterError):
        engine.value(data.x_test, data.y_test, method="lsh")  # brute backend
    lsh_engine = ValuationEngine(
        data.x_train,
        data.y_train,
        2,
        backend="lsh",
        backend_options={"params": full_recall_params(2), "seed": 0},
    )
    with pytest.raises(ParameterError):
        lsh_engine.value(data.x_test, data.y_test, method="exact")
    with pytest.raises(ParameterError):
        engine.value(data.x_test[:, :3], data.y_test)  # dim mismatch


def test_truncated_rejected_for_regression():
    from repro.datasets import regression_dataset

    data = regression_dataset(n_train=20, n_test=3, seed=93)
    engine = ValuationEngine(data.x_train, data.y_train, 2, task="regression")
    with pytest.raises(ParameterError):
        engine.value(data.x_test, data.y_test, method="truncated")


def test_from_dataset_and_wrappers(data):
    engine = ValuationEngine.from_dataset(data, 3)
    assert engine.n_train == data.n_train
    exact = engine.exact(data.x_test, data.y_test)
    trunc = engine.truncated(data.x_test, data.y_test, epsilon=0.1)
    assert exact.method == "exact"
    assert trunc.method == "truncated"


# -------------------------------------------------- dynamic training sets
@pytest.mark.parametrize("backend", ["brute", "blocked", "lsh"])
def test_engine_mutation_matches_full_recompute(data, backend, full_recall_params, rng):
    """Engine-level add/remove matches a freshly built engine on the
    mutated dataset, on every backend (LSH absorbs bounded churn into
    its buckets in place — no refit warning)."""
    options = {"params": full_recall_params(3), "seed": 0} if backend == "lsh" else None
    method = "lsh" if backend == "lsh" else "exact"
    epsilon = 1.0 / (data.n_train + 2)
    engine = ValuationEngine(
        data.x_train, data.y_train, 3, backend=backend, backend_options=options
    )
    x_new = rng.standard_normal((2, 12))
    y_new = rng.integers(0, 2, 2)
    engine.add_points(x_new, y_new)
    got = engine.value(data.x_test, data.y_test, method=method, epsilon=epsilon)
    fresh = ValuationEngine(
        np.vstack((data.x_train, x_new)),
        np.concatenate((data.y_train, y_new)),
        3,
        backend=backend,
        backend_options=options,
    ).value(data.x_test, data.y_test, method=method, epsilon=epsilon)
    np.testing.assert_allclose(got.values, fresh.values, rtol=0, atol=1e-12)

    doomed = [0, data.n_train]  # one incumbent, one newcomer
    engine.remove_points(doomed)
    got = engine.value(data.x_test, data.y_test, method=method, epsilon=epsilon)
    fresh = ValuationEngine(
        np.delete(np.vstack((data.x_train, x_new)), doomed, axis=0),
        np.delete(np.concatenate((data.y_train, y_new)), doomed),
        3,
        backend=backend,
        backend_options=options,
    ).value(data.x_test, data.y_test, method=method, epsilon=epsilon)
    np.testing.assert_allclose(got.values, fresh.values, rtol=0, atol=1e-12)
    assert engine.n_train == data.n_train


# ------------------------------------------------------------- weighted
@pytest.mark.parametrize("k", [1, 2])
def test_weighted_matches_single_shot(k):
    """Engine weighted valuation (chunked, via the kernel registry)
    matches the single-shot Theorem 7 path to 1e-12."""
    from repro.core import exact_weighted_knn_shapley
    from repro.datasets import gaussian_blobs

    data = gaussian_blobs(n_train=45, n_test=6, n_features=5, seed=97)
    reference = exact_weighted_knn_shapley(data, k, weights="inverse_distance")
    engine = ValuationEngine(data.x_train, data.y_train, k, chunk_size=2)
    result = engine.value(
        data.x_test, data.y_test, method="weighted", store_per_test=True
    )
    assert result.method == "exact-weighted"
    assert result.extra["kernel"] == "weighted"
    np.testing.assert_allclose(
        result.values, reference.values, rtol=0, atol=1e-12
    )
    np.testing.assert_allclose(
        result.extra["per_test"], reference.extra["per_test"], atol=1e-12
    )


def test_weighted_regression_matches_single_shot():
    from repro.core import exact_weighted_knn_shapley
    from repro.datasets import regression_dataset

    data = regression_dataset(n_train=30, n_test=4, n_features=4, seed=98)
    reference = exact_weighted_knn_shapley(
        data, 2, weights="uniform", task="regression"
    )
    engine = ValuationEngine(
        data.x_train, data.y_train, 2, task="regression", chunk_size=3
    )
    result = engine.value(
        data.x_test, data.y_test, method="weighted", weights="uniform"
    )
    np.testing.assert_allclose(
        result.values, reference.values, rtol=0, atol=1e-12
    )


def test_weighted_caches_ranking_with_distances():
    from repro.datasets import gaussian_blobs

    data = gaussian_blobs(n_train=40, n_test=5, n_features=4, seed=99)
    engine = ValuationEngine(data.x_train, data.y_train, 1)
    first = engine.value(data.x_test, data.y_test, method="weighted")
    assert first.extra["cache"]["hits"] == 0
    second = engine.value(data.x_test, data.y_test, method="weighted")
    assert second.extra["cache"]["hits"] == 1
    np.testing.assert_array_equal(first.values, second.values)
    # an exact request rides the same cached permutation
    exact = engine.value(data.x_test, data.y_test, method="exact")
    assert exact.extra["cache"]["hits"] == 2


def test_weighted_mode_selection_surfaced_in_extra_and_stats():
    """The engine routes the weighted mode through the kernel, reports
    the chosen path in extra, and counts paths in stats()."""
    from repro.datasets import gaussian_blobs
    from repro.exceptions import ParameterError

    data = gaussian_blobs(n_train=30, n_test=4, n_features=4, seed=97)
    engine = ValuationEngine(data.x_train, data.y_train, 2, chunk_size=2)
    auto = engine.value(
        data.x_test, data.y_test, method="weighted", weights="rank"
    )
    assert auto.extra["weighted_path"] == "piecewise"
    assert auto.extra["mode"] == "auto"
    vec = engine.value(
        data.x_test, data.y_test, method="weighted", weights="inverse_distance"
    )
    assert vec.extra["weighted_path"] == "vectorized"
    ref = engine.value(
        data.x_test,
        data.y_test,
        method="weighted",
        weights="rank",
        mode="reference",
    )
    assert ref.extra["weighted_path"] == "reference"
    np.testing.assert_allclose(auto.values, ref.values, rtol=0, atol=1e-12)

    counters = engine.stats()["counters"]
    assert counters["weighted_path_piecewise"] == 1
    assert counters["weighted_path_vectorized"] == 1
    assert counters["weighted_path_reference"] == 1

    # invalid modes are rejected up front, before any chunk runs
    with pytest.raises(ParameterError):
        engine.value(
            data.x_test,
            data.y_test,
            method="weighted",
            weights="inverse_distance",
            mode="piecewise",
        )


def test_weighted_k2_auto_matches_single_shot_at_serving_scale():
    """K=2 through the engine: fast paths, chunking and caching agree
    with the single-shot reference."""
    from repro.core import exact_weighted_knn_shapley
    from repro.datasets import gaussian_blobs

    data = gaussian_blobs(n_train=36, n_test=6, n_features=4, seed=96)
    reference = exact_weighted_knn_shapley(data, 2, weights="rank")
    engine = ValuationEngine(data.x_train, data.y_train, 2, chunk_size=2)
    result = engine.value(
        data.x_test, data.y_test, method="weighted", weights="rank"
    )
    np.testing.assert_allclose(
        result.values, reference.values, rtol=0, atol=1e-12
    )
