"""Tests for the incremental valuation subsystem under dataset churn."""

import numpy as np
import pytest

from repro.core.exact import exact_knn_shapley_from_order
from repro.datasets import gaussian_blobs
from repro.engine import IncrementalValuator, make_backend
from repro.exceptions import NotFittedError, ParameterError

BACKENDS = ["brute", "blocked"]


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(n_train=150, n_test=9, n_classes=3, n_features=6, seed=7)


def full_values(x_train, y_train, x_test, y_test, k):
    """Reference: rank from scratch, run the full recursion."""
    order = make_backend("brute").fit(x_train).rank(x_test)
    values, _ = exact_knn_shapley_from_order(order, y_train, y_test, k)
    return values


def make_valuator(data, backend, k=4):
    options = (
        {"block_size": 64, "query_block": 4} if backend == "blocked" else None
    )
    v = IncrementalValuator(
        data.x_train, data.y_train, k, backend=backend, backend_options=options
    )
    return v.fit(data.x_test, data.y_test)


# ------------------------------------------------------------ add/remove
@pytest.mark.parametrize("backend", BACKENDS)
def test_add_points_matches_full_recompute(data, backend, rng):
    v = make_valuator(data, backend)
    x_new = rng.standard_normal((5, 6))
    y_new = rng.integers(0, 3, 5)
    idx = v.add_points(x_new, y_new)
    np.testing.assert_array_equal(idx, np.arange(150, 155))
    ref = full_values(
        np.vstack((data.x_train, x_new)),
        np.concatenate((data.y_train, y_new)),
        data.x_test,
        data.y_test,
        4,
    )
    np.testing.assert_allclose(v.values().values, ref, rtol=0, atol=1e-12)
    # the canonical resync is bit-identical to the from-scratch run
    np.testing.assert_array_equal(v.recompute().values, ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_remove_points_matches_full_recompute(data, backend):
    v = make_valuator(data, backend)
    doomed = [0, 17, 149, 80]
    v.remove_points(doomed)
    ref = full_values(
        np.delete(data.x_train, doomed, axis=0),
        np.delete(data.y_train, doomed),
        data.x_test,
        data.y_test,
        4,
    )
    assert v.n_train == 146
    np.testing.assert_allclose(v.values().values, ref, rtol=0, atol=1e-12)
    np.testing.assert_array_equal(v.recompute().values, ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_interleaved_churn_stays_exact(data, backend, rng):
    """A long add/remove sequence tracks the reference throughout."""
    v = make_valuator(data, backend)
    x_train = data.x_train.copy()
    y_train = data.y_train.copy()
    for step in range(12):
        if x_train.shape[0] > 20 and step % 3 == 2:
            t = int(rng.integers(0, x_train.shape[0]))
            v.remove_points([t])
            x_train = np.delete(x_train, [t], axis=0)
            y_train = np.delete(y_train, [t])
        else:
            x_new = rng.standard_normal((1, 6))
            y_new = rng.integers(0, 3, 1)
            v.add_points(x_new, y_new)
            x_train = np.vstack((x_train, x_new))
            y_train = np.concatenate((y_train, y_new))
        ref = full_values(x_train, y_train, data.x_test, data.y_test, 4)
        np.testing.assert_allclose(v.values().values, ref, rtol=0, atol=1e-12)


# ------------------------------------------------------------ round trip
@pytest.mark.parametrize("backend", BACKENDS)
def test_add_then_remove_round_trip_is_bit_exact(data, backend, rng):
    """Adding points and removing them again restores the Shapley
    vector bit-for-bit (the rank state round-trips exactly)."""
    v = make_valuator(data, backend)
    before = v.recompute().values.copy()
    idx = v.add_points(rng.standard_normal((3, 6)), rng.integers(0, 3, 3))
    v.remove_points(idx)
    np.testing.assert_array_equal(v.recompute().values, before)
    # and the incrementally repaired vector stays inside the acceptance
    # bound without any resync
    np.testing.assert_allclose(v.values().values, before, rtol=0, atol=1e-12)


def test_remove_then_readd_duplicate_geometry(data):
    """Removing a point and re-adding identical coordinates restores the
    same values: the re-added point takes the tie-slot its index
    dictates, and matching labels make the valuation identical."""
    v = make_valuator(data, "brute")
    before = v.recompute().values.copy()
    x17, y17 = data.x_train[17].copy(), data.y_train[17]
    v.remove_points([17])
    v.add_points(x17, y17)
    after = v.recompute().values
    # the point now lives at index 149 (it re-entered last); its value
    # is unchanged, as is everyone else's
    np.testing.assert_allclose(after[-1], before[17], rtol=0, atol=1e-15)
    np.testing.assert_allclose(
        np.delete(after, -1), np.delete(before, 17), rtol=0, atol=1e-15
    )


# ------------------------------------------------------------ edge cases
def test_duplicate_coordinates_tie_break(rng):
    """A new point duplicating an incumbent ranks after it (by index)."""
    x_train = rng.standard_normal((12, 3))
    y_train = rng.integers(0, 2, 12)
    v = IncrementalValuator(x_train, y_train, 2).fit(
        x_train[:4] + 0.3, y_train[:4]
    )
    v.add_points(x_train[5], 1 - y_train[5])  # exact duplicate, other label
    ref = full_values(
        np.vstack((x_train, x_train[5:6])),
        np.concatenate((y_train, [1 - y_train[5]])),
        x_train[:4] + 0.3,
        y_train[:4],
        2,
    )
    np.testing.assert_array_equal(v.recompute().values, ref)
    np.testing.assert_allclose(v.values().values, ref, rtol=0, atol=1e-12)


def test_k_geq_n_corner(rng):
    """Shrinking below K keeps the exact K >= N anchor semantics."""
    x_train = rng.standard_normal((6, 2))
    y_train = rng.integers(0, 2, 6)
    x_test = rng.standard_normal((3, 2))
    y_test = rng.integers(0, 2, 3)
    v = IncrementalValuator(x_train, y_train, 5).fit(x_test, y_test)
    v.remove_points([1, 4])  # n = 4 < k
    ref = full_values(
        np.delete(x_train, [1, 4], axis=0),
        np.delete(y_train, [1, 4]),
        x_test,
        y_test,
        5,
    )
    np.testing.assert_allclose(v.values().values, ref, rtol=0, atol=1e-12)
    np.testing.assert_array_equal(v.recompute().values, ref)


def test_mutations_before_fit_then_fit(data, rng):
    """Mutations are legal pre-fit; fit then ranks the mutated set."""
    v = IncrementalValuator(data.x_train, data.y_train, 3)
    x_new = rng.standard_normal((2, 6))
    y_new = rng.integers(0, 3, 2)
    v.add_points(x_new, y_new)
    v.remove_points([0])
    with pytest.raises(NotFittedError):
        v.values()
    v.fit(data.x_test, data.y_test)
    ref = full_values(
        np.delete(np.vstack((data.x_train, x_new)), [0], axis=0),
        np.delete(np.concatenate((data.y_train, y_new)), [0]),
        data.x_test,
        data.y_test,
        3,
    )
    np.testing.assert_array_equal(v.values().values, ref)


def test_validation_errors(data, rng):
    v = make_valuator(data, "brute")
    with pytest.raises(ParameterError):
        v.add_points(rng.standard_normal((2, 9)), [0, 1])  # wrong width
    with pytest.raises(ParameterError):
        v.remove_points([999])
    with pytest.raises(ParameterError):
        v.remove_points([3, 3])
    with pytest.raises(ParameterError):
        v.remove_points(np.arange(v.n_train))  # cannot empty the set
    with pytest.raises(ParameterError):
        IncrementalValuator(data.x_train, data.y_train, 0)
    with pytest.raises(ParameterError):
        IncrementalValuator(data.x_train, data.y_train, 3, backend="lsh")


def test_remove_noop_and_counters(data):
    v = make_valuator(data, "brute")
    v.remove_points([])
    assert v.n_mutations == 0
    v.add_points(data.x_train[0], data.y_train[0])
    assert v.n_mutations == 1
    assert v.values().extra["n_mutations"] == 1
    assert v.values().extra["backend"] == "brute"


def test_backends_agree_bitwise_under_churn(data, rng):
    """Brute and blocked maintain identical state through mutations."""
    a = make_valuator(data, "brute")
    b = make_valuator(data, "blocked")
    moves_x = rng.standard_normal((4, 6))
    moves_y = rng.integers(0, 3, 4)
    for va in (a, b):
        va.add_points(moves_x, moves_y)
        va.remove_points([10, 151])
    np.testing.assert_array_equal(a.values().values, b.values().values)
    np.testing.assert_array_equal(a.recompute().values, b.recompute().values)


def test_metric_adopted_from_backend_and_conflicts_refused(rng):
    """The valuator scores new points in the backend's geometry; a
    conflicting explicit metric is an error, not silent corruption."""
    x_train = rng.standard_normal((40, 4))
    y_train = rng.integers(0, 2, 40)
    x_test = rng.standard_normal((6, 4))
    y_test = rng.integers(0, 2, 6)
    v = IncrementalValuator(
        x_train, y_train, 3, backend="brute", backend_options={"metric": "cosine"}
    ).fit(x_test, y_test)
    assert v.metric == "cosine"
    v.add_points(rng.standard_normal(4), 1)
    ref = make_backend("brute", metric="cosine").fit(v.x_train).rank(x_test)
    got, _ = exact_knn_shapley_from_order(ref, v.y_train, y_test, 3)
    np.testing.assert_array_equal(v.recompute().values, got)
    with pytest.raises(ParameterError, match="conflicts"):
        IncrementalValuator(
            x_train, y_train, 3, metric="euclidean",
            backend="brute", backend_options={"metric": "cosine"},
        )
