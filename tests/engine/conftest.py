"""Shared helpers for the engine test suite."""

from __future__ import annotations

import pytest

from repro.lsh.contrast import ContrastEstimate
from repro.lsh.tuning import LSHParameters


def _full_recall_params(k: int = 3) -> LSHParameters:
    """Degenerate LSH parameters hashing every point into one bucket.

    With a quantization width far beyond any projection value, all
    points share a single bucket per table, so retrieval is exhaustive
    and exact re-ranking makes the index equivalent to brute force —
    handy for asserting exact-path identities through the LSH backend.
    """
    return LSHParameters(
        width=1e9,
        n_bits=1,
        n_tables=2,
        g=0.5,
        contrast=ContrastEstimate(d_mean=1.0, d_k=0.5, contrast=2.0, k=k),
    )


@pytest.fixture()
def full_recall_params():
    """Factory fixture for :func:`_full_recall_params`."""
    return _full_recall_params
