"""Tests for the sharded multi-engine tier (ShardRouter).

The headline invariant: for exact-search backends, a router of any
width returns values bit-matched (<= 1e-12; identical in practice) to
a single ValuationEngine over the same training set — across kernels,
tie-heavy data, and mutations.  The robustness contract (timeouts,
retry-once, degraded mode) and the observability threading (one trace
tree, one labeled hub) are tested behaviorally.
"""

import threading
import time

import numpy as np
import pytest

from repro.engine import ShardRouter, ValuationEngine, ValuationService
from repro.exceptions import ParameterError, ShardError
from repro.monitor import MaintenanceScheduler, TelemetryHub, Tracer


@pytest.fixture(scope="module")
def data():
    from repro.datasets import gaussian_blobs

    return gaussian_blobs(n_train=350, n_test=23, n_features=12, seed=91)


def _engine(data, k=4, **kw):
    return ValuationEngine(data.x_train, data.y_train, k, **kw)


def _router(data, k=4, **kw):
    kw.setdefault("n_shards", 2)
    return ShardRouter(data.x_train, data.y_train, k, **kw)


# ------------------------------------------------------- bit identity
@pytest.mark.parametrize("sharding", ["data", "test"])
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_exact_bit_matches_single_engine(data, sharding, n_shards):
    reference = _engine(data).value(data.x_test, data.y_test)
    with _router(data, n_shards=n_shards, sharding=sharding) as router:
        result = router.value(data.x_test, data.y_test)
    assert np.max(np.abs(result.values - reference.values)) <= 1e-12
    assert result.method == "exact"
    assert result.extra["sharding"] == sharding
    assert result.extra["n_shards"] == n_shards


@pytest.mark.parametrize("sharding", ["data", "test"])
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_truncated_bit_matches_single_engine(data, sharding, n_shards):
    reference = _engine(data).value(
        data.x_test, data.y_test, method="truncated", epsilon=0.1
    )
    with _router(data, n_shards=n_shards, sharding=sharding) as router:
        result = router.value(
            data.x_test, data.y_test, method="truncated", epsilon=0.1
        )
    assert np.max(np.abs(result.values - reference.values)) <= 1e-12
    assert result.extra["k_star"] == reference.extra["k_star"]


# the weighted cases run K=1 (closed-form path) and K=2 with rank-only
# weights (piecewise counting): the distance-weight configuration
# engine at K >= 3 is combinatorial and has no place in a unit test
@pytest.mark.parametrize("sharding", ["data", "test"])
@pytest.mark.parametrize(
    "k,weights,mode",
    [(1, "inverse_distance", "auto"), (2, "rank", "piecewise")],
)
def test_weighted_bit_matches_single_engine(data, sharding, k, weights, mode):
    reference = _engine(data, k=k).value(
        data.x_test, data.y_test, method="weighted", weights=weights, mode=mode
    )
    with _router(data, k=k, n_shards=2, sharding=sharding) as router:
        result = router.value(
            data.x_test,
            data.y_test,
            method="weighted",
            weights=weights,
            mode=mode,
        )
    assert np.max(np.abs(result.values - reference.values)) <= 1e-12


@pytest.mark.parametrize("sharding", ["data", "test"])
def test_regression_bit_matches_single_engine(sharding):
    from repro.datasets import regression_dataset

    data = regression_dataset(n_train=60, n_test=9, n_features=4, seed=92)
    reference = ValuationEngine(
        data.x_train, data.y_train, 3, task="regression"
    ).value(data.x_test, data.y_test)
    with ShardRouter(
        data.x_train,
        data.y_train,
        3,
        n_shards=3,
        sharding=sharding,
        task="regression",
    ) as router:
        result = router.value(data.x_test, data.y_test)
    assert np.max(np.abs(result.values - reference.values)) <= 1e-12
    assert result.method == "exact-regression"


def test_duplicate_points_tie_break_is_exact():
    """Duplicated rows force cross-shard distance ties; the merge must
    reproduce the single engine's distance-then-index order exactly."""
    rng = np.random.default_rng(7)
    base = rng.normal(size=(40, 5))
    x_train = np.vstack([base, base, base])  # every point thrice
    y_train = np.asarray(rng.integers(0, 3, size=120))
    x_test = base[:11] + 0.01 * rng.normal(size=(11, 5))
    y_test = np.asarray(rng.integers(0, 3, size=11))
    engine = ValuationEngine(x_train, y_train, 4)
    for method, kwargs in [("exact", {}), ("truncated", {"epsilon": 0.2})]:
        reference = engine.value(x_test, y_test, method=method, **kwargs)
        with ShardRouter(x_train, y_train, 4, n_shards=4) as router:
            result = router.value(x_test, y_test, method=method, **kwargs)
        np.testing.assert_array_equal(result.values, reference.values)


def test_store_per_test_matches_single_engine(data):
    reference = _engine(data).value(
        data.x_test, data.y_test, store_per_test=True
    )
    with _router(data, n_shards=3) as router:
        result = router.value(data.x_test, data.y_test, store_per_test=True)
    np.testing.assert_allclose(
        result.extra["per_test"], reference.extra["per_test"], atol=1e-12
    )


# ----------------------------------------------------------- mutations
def test_mutations_round_trip_bit_exact(data):
    engine = _engine(data, cache=False)
    with _router(data, n_shards=3, cache=False) as router:
        rng = np.random.default_rng(5)
        x_new = rng.normal(size=(7, data.x_train.shape[1]))
        y_new = np.asarray(rng.integers(0, 2, size=7))
        got_e = engine.add_points(x_new, y_new)
        got_r = router.add_points(x_new, y_new)
        np.testing.assert_array_equal(got_e, got_r)
        assert router.n_train == engine.n_train

        after_add = router.value(data.x_test, data.y_test)
        ref_add = engine.value(data.x_test, data.y_test)
        np.testing.assert_array_equal(after_add.values, ref_add.values)

        # remove a mix of original and freshly appended points spanning
        # shards; numpy.delete renumbering must agree on both sides
        victims = np.asarray([0, 151, 340, int(got_r[2]), int(got_r[6])])
        engine.remove_points(victims)
        router.remove_points(victims)
        assert router.n_train == engine.n_train
        after_rm = router.value(data.x_test, data.y_test)
        ref_rm = engine.value(data.x_test, data.y_test)
        np.testing.assert_array_equal(after_rm.values, ref_rm.values)


def test_add_points_explicit_shard_and_validation(data):
    with _router(data, n_shards=2) as router:
        before = router.shards[1].engine.n_train
        router.add_points(
            data.x_train[:3], data.y_train[:3], shard=1
        )
        assert router.shards[1].engine.n_train == before + 3
        with pytest.raises(ParameterError):
            router.add_points(data.x_train[:1], data.y_train[:1], shard=9)


def test_remove_points_validation(data):
    with _router(data) as router:
        with pytest.raises(ParameterError):
            router.remove_points([0, 0])
        with pytest.raises(ParameterError):
            router.remove_points([router.n_train])


# ----------------------------------------------- robustness contract
def _break_shard(router, idx, exc=RuntimeError("shard down")):
    """Make shard ``idx`` raise on every retrieval/valuation."""

    def boom(*a, **kw):
        raise exc

    router.shards[idx].engine.retrieve = boom
    router.shards[idx].engine.value = boom


def test_fail_policy_raises_shard_error(data):
    with _router(data, on_shard_error="fail") as router:
        _break_shard(router, 1)
        with pytest.raises(ShardError) as err:
            router.value(data.x_test, data.y_test)
        assert "shard1" in err.value.reasons


def test_partial_policy_serves_exact_subgame(data):
    with _router(data, n_shards=2, on_shard_error="partial") as router:
        surviving = router._placement[0].copy()
        _break_shard(router, 1)
        result = router.value(data.x_test, data.y_test)
    degraded = result.extra["degraded"]
    assert degraded["shards"] == ["shard1"]
    assert degraded["semantics"] == "exact-subgame-over-surviving-shards"
    assert degraded["missing_points"] == router.n_train - surviving.shape[0]
    # the surviving shards' answer is the exact value of the sub-game
    # over the points they hold; lost positions contribute zero
    sub = ValuationEngine(
        data.x_train[surviving], data.y_train[surviving], 4
    ).value(data.x_test, data.y_test)
    np.testing.assert_array_equal(result.values[surviving], sub.values)
    lost = np.setdiff1d(np.arange(router.n_train), surviving)
    assert np.all(result.values[lost] == 0.0)


def test_partial_policy_test_sharded_bounds_the_loss(data):
    with _router(
        data, n_shards=2, sharding="test", on_shard_error="partial"
    ) as router:
        _break_shard(router, 1)
        result = router.value(data.x_test, data.y_test)
    degraded = result.extra["degraded"]
    assert degraded["semantics"] == "mean-over-served-tests"
    n_test = data.x_test.shape[0]
    served = np.array_split(np.arange(n_test), 2)[0].shape[0]
    assert degraded["missing_tests"] == n_test - served
    assert degraded["bound"] == pytest.approx(2.0 * (n_test - served) / n_test)
    # the served slice's mean is a real engine answer
    ref = _engine(data).value(data.x_test[:served], data.y_test[:served])
    np.testing.assert_allclose(result.values, ref.values, atol=1e-12)


def test_all_shards_dead_raises_even_under_partial(data):
    with _router(data, n_shards=2, on_shard_error="partial") as router:
        _break_shard(router, 0)
        _break_shard(router, 1)
        with pytest.raises(ShardError):
            router.value(data.x_test, data.y_test)


def test_transient_error_is_retried_once(data):
    reference = _engine(data).value(data.x_test, data.y_test)
    with _router(data, n_shards=2, on_shard_error="fail") as router:
        original = router.shards[1].engine.retrieve
        state = {"failures": 1}
        lock = threading.Lock()

        def flaky(*a, **kw):
            with lock:
                if state["failures"]:
                    state["failures"] -= 1
                    raise RuntimeError("transient")
            return original(*a, **kw)

        router.shards[1].engine.retrieve = flaky
        result = router.value(data.x_test, data.y_test)
        assert router.stats()["counters"]["retries"] == 1
    np.testing.assert_array_equal(result.values, reference.values)
    assert "degraded" not in result.extra


def test_timeout_hedges_once_without_retry(data):
    with _router(
        data, n_shards=2, on_shard_error="partial", shard_timeout=0.05
    ) as router:
        calls = {"n": 0}
        lock = threading.Lock()

        def stall(*a, **kw):
            with lock:
                calls["n"] += 1
            time.sleep(0.6)
            raise RuntimeError("unreachable in practice")

        router.shards[1].engine.retrieve = stall
        result = router.value(data.x_test, data.y_test)
        stats = router.stats()["counters"]
        assert stats["shard_timeouts"] >= 1
        assert stats["hedges"] == 1
        assert stats["retries"] == 0
    assert "timeout" in result.extra["degraded"]["reasons"]["shard1"]
    # the timed-out leg is hedged exactly once, never retried in place
    assert calls["n"] == 2


def test_timeout_without_hedge_calls_once(data):
    with _router(
        data,
        n_shards=2,
        on_shard_error="partial",
        shard_timeout=0.05,
        hedge=False,
    ) as router:
        calls = {"n": 0}
        lock = threading.Lock()

        def stall(*a, **kw):
            with lock:
                calls["n"] += 1
            time.sleep(0.6)
            raise RuntimeError("unreachable in practice")

        router.shards[1].engine.retrieve = stall
        result = router.value(data.x_test, data.y_test)
        stats = router.stats()["counters"]
        assert stats["shard_timeouts"] >= 1
        assert stats["hedges"] == 0
        assert stats["retries"] == 0
    assert "timeout" in result.extra["degraded"]["reasons"]["shard1"]
    assert calls["n"] == 1


# ------------------------------------------------------ observability
def test_one_trace_tree_per_request(data):
    tracer = Tracer()
    with _router(data, n_shards=2, tracer=tracer) as router:
        result = router.value(data.x_test, data.y_test)
    tree = result.extra["trace"]
    assert tree["name"] == "router.request"
    names = [c["name"] for c in tree["children"]]
    assert names.count("shard.request") == 2
    assert "router.merge" in names
    assert "kernel.exact" in names
    shard_children = [
        g["name"]
        for c in tree["children"]
        if c["name"] == "shard.request"
        for g in c["children"]
    ]
    assert "engine.retrieve" in shard_children


def test_one_hub_aggregates_the_fleet(data):
    hub = TelemetryHub()
    with _router(data, n_shards=2, hub=hub) as router:
        router.value(data.x_test, data.y_test)
        router.add_points(data.x_train[:2], data.y_train[:2])
    assert hub.counter("shard0.engine.retrievals") >= 1
    assert hub.counter("shard1.engine.retrievals") >= 1
    assert hub.counter("router.mutations") == 1
    assert hub.n_recorded("router.request_seconds") == 1
    assert hub.n_recorded("router.merge_seconds") == 1


def test_service_fronts_a_router_unchanged(data):
    reference = _engine(data).value(data.x_test, data.y_test)
    router = _router(data, n_shards=2)
    with ValuationService(router, n_workers=2) as service:
        job = service.submit_batch(data.x_test, data.y_test)
        result = job.result(timeout=30.0)
        np.testing.assert_array_equal(result.values, reference.values)
        add = service.submit_add(data.x_train[:2], data.y_train[:2])
        assert add.result(timeout=30.0).n_train == data.n_train + 2
    router.close()


def test_maintenance_scheduler_spans_the_fleet(data):
    with _router(data, n_shards=2) as router:
        sched = MaintenanceScheduler(router=router, interval=30.0)
        assert sched.stats()["gauges"]["n_units"] == 2
        router.value(data.x_test, data.y_test)
        sched.run_once()  # a healthy fleet plans no action
        assert sched.hub is router.telemetry
    with pytest.raises(ParameterError):
        MaintenanceScheduler(
            router=router, engine=router.shards[0].engine
        )
    with pytest.raises(ParameterError):
        MaintenanceScheduler(router=router, detectors=[])


# -------------------------------------------------------- validation
def test_constructor_validation(data):
    for kwargs in [
        {"n_shards": 0},
        {"sharding": "rows"},
        {"on_shard_error": "ignore"},
        {"shard_timeout": 0.0},
        {"n_shards": data.n_train + 1},
    ]:
        with pytest.raises(ParameterError):
            ShardRouter(data.x_train, data.y_train, 4, **kwargs)


def test_value_validation(data):
    with _router(data) as router:
        with pytest.raises(ParameterError):
            router.value(data.x_test[:, :3], data.y_test)
        with pytest.raises(ParameterError):
            router.value(data.x_test, data.y_test, method="no-such-method")


def test_stats_schema(data):
    with _router(data, n_shards=2) as router:
        router.value(data.x_test, data.y_test)
        stats = router.stats()
    assert stats["component"] == "shard_router"
    assert stats["counters"]["requests"] == 1
    assert stats["gauges"]["n_shards"] == 2
    assert set(stats["shards"]) == {"shard0", "shard1"}
    assert stats["shards"]["shard0"]["component"] == "valuation_engine"
