"""The efficiency (group rationality) axiom, asserted across backends.

For exact Shapley values the axiom demands ``sum_i s_i = U(D) - U(∅)``
— the full utility gain is distributed, nothing more, nothing less.
The engine's chunk-merge must preserve this *identically* for every
backend on its exact path, including the ``K >= N`` corner the paper
leaves implicit (every coalition is smaller than K, so the anchor term
changes shape).
"""

import numpy as np
import pytest

from repro.engine import ValuationEngine
from repro.utility import KNNClassificationUtility, KNNRegressionUtility


@pytest.fixture()
def engines_under_test(full_recall_params):
    """Factory yielding one engine per backend, all exact-path.

    The LSH backend runs the truncated path with degenerate
    single-bucket parameters and ``K* >= N``, which Theorem 2 makes
    exactly Theorem 1.
    """

    def build(data, k, task="classification"):
        common = dict(task=task, chunk_size=3)
        yield "brute", ValuationEngine(
            data.x_train, data.y_train, k, backend="brute", **common
        ), {"method": "exact"}
        yield "blocked", ValuationEngine(
            data.x_train,
            data.y_train,
            k,
            backend="blocked",
            backend_options={"block_size": 4, "query_block": 2},
            **common,
        ), {"method": "exact"}
        if task == "classification":
            yield "lsh", ValuationEngine(
                data.x_train,
                data.y_train,
                k,
                backend="lsh",
                backend_options={"params": full_recall_params(k), "seed": 0},
                **common,
            ), {"method": "lsh", "epsilon": 1.0 / (2 * data.n_train)}

    return build


@pytest.mark.parametrize("k", [1, 2, 4])
def test_efficiency_axiom_classification(tiny_cls, k, engines_under_test):
    utility = KNNClassificationUtility(tiny_cls, k)
    expected = utility.total_gain()
    for name, engine, kwargs in engines_under_test(tiny_cls, k):
        result = engine.value(tiny_cls.x_test, tiny_cls.y_test, **kwargs)
        assert result.total() == pytest.approx(expected, abs=1e-10), name


def test_efficiency_axiom_k_geq_n_corner(tiny_cls, engines_under_test):
    """K >= N: every training point is always a neighbor; the axiom
    must still hold exactly for every backend."""
    k = tiny_cls.n_train + 3
    utility = KNNClassificationUtility(tiny_cls, k)
    expected = utility.total_gain()
    values_by_backend = {}
    for name, engine, kwargs in engines_under_test(tiny_cls, k):
        result = engine.value(tiny_cls.x_test, tiny_cls.y_test, **kwargs)
        assert result.total() == pytest.approx(expected, abs=1e-10), name
        values_by_backend[name] = result.values
    # and all backends agree value-by-value, not just in total
    np.testing.assert_allclose(
        values_by_backend["blocked"], values_by_backend["brute"], atol=1e-12
    )
    np.testing.assert_allclose(
        values_by_backend["lsh"], values_by_backend["brute"], atol=1e-12
    )


@pytest.mark.parametrize("k", [2, 10])
def test_efficiency_axiom_regression(tiny_reg, k, engines_under_test):
    """Theorem 6 path (including its own K >= N corner at k=10 > 8)."""
    utility = KNNRegressionUtility(tiny_reg, k)
    expected = utility.total_gain()
    for name, engine, kwargs in engines_under_test(
        tiny_reg, k, task="regression"
    ):
        result = engine.value(tiny_reg.x_test, tiny_reg.y_test, **kwargs)
        assert result.total() == pytest.approx(expected, abs=1e-9), name


def test_efficiency_axiom_multiclass(tiny_cls_multiclass, engines_under_test):
    utility = KNNClassificationUtility(tiny_cls_multiclass, 3)
    expected = utility.total_gain()
    for name, engine, kwargs in engines_under_test(tiny_cls_multiclass, 3):
        result = engine.value(
            tiny_cls_multiclass.x_test, tiny_cls_multiclass.y_test, **kwargs
        )
        assert result.total() == pytest.approx(expected, abs=1e-10), name
