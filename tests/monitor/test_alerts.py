"""Tests for alert rules, firing state, dedup, and sinks."""

import json

import pytest

from repro.exceptions import ParameterError
from repro.monitor import (
    AlertManager,
    AlertRule,
    CounterIncreaseRule,
    JsonlSink,
    SLOTracker,
    TelemetryHub,
    ThresholdRule,
    router_rules,
)
from repro.monitor.drift import DriftSignal


def test_threshold_rule_fires_and_resolves():
    hub = TelemetryHub()
    alerts = AlertManager(
        hub,
        rules=[ThresholdRule("hot", series="lat", stat="mean", op=">", value=0.1)],
    )
    hub.record("lat", 0.01)
    assert alerts.evaluate() == []

    for _ in range(200):
        hub.record("lat", 0.5)
    (fired,) = alerts.evaluate()
    assert (fired["name"], fired["state"]) == ("hot", "firing")
    assert alerts.active()[0]["name"] == "hot"

    # the window rolls past the burst and the rule resolves
    for _ in range(2000):
        hub.record("lat", 0.001)
    (resolved,) = alerts.evaluate()
    assert resolved["state"] == "resolved"
    assert resolved["duration_seconds"] >= 0.0
    assert alerts.active() == []


def test_threshold_rule_percentile_stat_reads_the_histogram():
    hub = TelemetryHub()
    alerts = AlertManager(
        hub,
        rules=[ThresholdRule("tail", series="lat", stat="p99", op=">", value=0.1)],
    )
    for _ in range(99):
        hub.record("lat", 0.001)
    assert alerts.evaluate() == []  # the tail is still under the bound
    for _ in range(50):
        hub.record("lat", 0.5)
    (fired,) = alerts.evaluate()
    assert fired["state"] == "firing" and "p99" in fired["message"]


def test_firing_alert_dedups_until_resolved():
    hub = TelemetryHub()
    alerts = AlertManager(
        hub, rules=[ThresholdRule("hot", counter="errs", op=">", value=0.5)]
    )
    seen = []
    alerts.add_sink(lambda p: seen.append((p["name"], p["state"])))
    hub.count("errs")
    alerts.evaluate()
    alerts.evaluate()
    alerts.evaluate()
    # the sink heard one transition; the active record counted three hits
    assert seen == [("hot", "firing")]
    assert alerts.active()[0]["count"] == 3


def test_counter_increase_rule_seeds_then_fires_on_growth():
    hub = TelemetryHub()
    rule = CounterIncreaseRule("degraded", "router.degraded_requests", "critical")
    alerts = AlertManager(hub, rules=[rule])
    hub.count("router.degraded_requests", 5)
    assert alerts.evaluate() == []  # first evaluation seeds the baseline
    assert alerts.evaluate() == []  # no growth, no alert
    hub.count("router.degraded_requests", 2)
    (fired,) = alerts.evaluate()
    assert fired["state"] == "firing" and "+2" in fired["message"]
    (resolved,) = alerts.evaluate()  # growth stopped -> resolves
    assert resolved["state"] == "resolved"


def test_router_rules_cover_the_degradation_counters():
    names = {r.name for r in router_rules()}
    assert names == {"router.degraded", "router.shard_timeouts", "router.shard_errors"}
    prefixed = {r.name for r in router_rules(prefix="tier0")}
    assert all(n.startswith("tier0.") for n in prefixed)


def test_threshold_rule_requires_exactly_one_source():
    with pytest.raises(ParameterError):
        ThresholdRule("x", op=">", value=1.0)
    with pytest.raises(ParameterError):
        ThresholdRule("x", series="a", counter="b", op=">", value=1.0)


def test_rule_exception_surfaces_as_a_firing_alert():
    def boom(hub):
        raise RuntimeError("detector crashed")

    hub = TelemetryHub()
    alerts = AlertManager(hub, rules=[AlertRule("broken", check=boom)])
    (fired,) = alerts.evaluate()
    assert fired["state"] == "firing"
    assert "rule error" in fired["message"]


def test_jsonl_and_callback_sinks_hear_the_same_transitions(tmp_path):
    path = tmp_path / "alerts.jsonl"
    hub = TelemetryHub()
    alerts = AlertManager(
        hub, rules=[ThresholdRule("hot", counter="errs", op=">", value=0.5)]
    )
    alerts.add_sink(JsonlSink(path))
    heard = []
    alerts.add_sink(heard.append)
    hub.count("errs")
    alerts.evaluate()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 1
    assert lines[0]["name"] == "hot" and lines[0]["state"] == "firing"
    assert lines[0]["severity"] == "warn"
    assert [(p["name"], p["state"]) for p in heard] == [("hot", "firing")]


def test_sink_errors_are_counted_not_raised():
    hub = TelemetryHub()
    alerts = AlertManager(
        hub, rules=[ThresholdRule("hot", counter="errs", op=">", value=0.5)]
    )
    alerts.add_sink(lambda p: (_ for _ in ()).throw(RuntimeError("sink down")))
    hub.count("errs")
    alerts.evaluate()  # must not raise
    assert alerts.stats()["counters"]["sink_errors"] == 1


def test_record_event_and_drift_signal_ingestion():
    hub = TelemetryHub()
    alerts = AlertManager(hub)
    alerts.record_event("maintenance.retune", "retune ok", severity="info", shard="s0")
    signal = DriftSignal(
        kind="recall-degraded",
        severity="warn",
        value=0.62,
        threshold=0.8,
        action="retune",
        detector="recall-probe",
        details={"shard": "s1"},
    )
    payload = alerts.observe_signal(signal)
    assert payload["name"] == "drift.recall-degraded"
    assert payload["labels"]["shard"] == "s1"
    assert payload["labels"]["detector"] == "recall-probe"
    snapshot = alerts.snapshot()
    assert [h["state"] for h in snapshot["history"]] == ["event", "event"]
    # events pass through; they never pin the active set
    assert alerts.active() == []


def test_slo_adoption_names_and_labels():
    hub = TelemetryHub()
    slo = SLOTracker(hub, clock=iter(range(0, 10**9, 60)).__next__)
    slo.add("latency", "svc.lat p99 < 50ms")
    alerts = AlertManager(hub, slo=slo)
    for _ in range(40):
        for _ in range(50):
            hub.record("svc.lat", 0.5)
        slo.tick()
    transitions = alerts.evaluate()
    (fired,) = [t for t in transitions if t["state"] == "firing"]
    assert fired["name"] == "slo.latency"
    assert fired["labels"]["stream"] == "svc.lat"
    assert "burn" in fired["message"]


def test_active_sorts_critical_first():
    hub = TelemetryHub()
    alerts = AlertManager(
        hub,
        rules=[
            ThresholdRule("warnish", counter="a", op=">", value=0.5, severity="warn"),
            ThresholdRule(
                "critical-one", counter="b", op=">", value=0.5, severity="critical"
            ),
        ],
    )
    hub.count("a")
    hub.count("b")
    alerts.evaluate()
    assert [a["name"] for a in alerts.active()] == ["critical-one", "warnish"]
