"""Tests for the telemetry hub and reservoir sampling."""

import threading

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.monitor import Reservoir, TelemetryHub
from repro.stats import STATS_SCHEMA_KEYS, component_stats


def test_counters_accumulate():
    hub = TelemetryHub()
    hub.count("a")
    hub.count("a", 3)
    hub.count("b")
    assert hub.counter("a") == 4
    assert hub.counter("b") == 1
    assert hub.counter("never") == 0


def test_series_window_and_summaries():
    hub = TelemetryHub(window=4)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        hub.record("lat", v)
    window = hub.series("lat")
    assert window.tolist() == [3.0, 4.0, 5.0, 6.0]  # window trims oldest
    assert hub.mean("lat") == pytest.approx(4.5)
    assert hub.mean("lat", last=2) == pytest.approx(5.5)
    assert hub.last("lat") == 6.0
    assert hub.n_recorded("lat") == 6  # all-time count survives the trim
    assert hub.series("nope").size == 0
    assert np.isnan(hub.mean("nope"))
    assert np.isnan(hub.last("nope"))


def test_reservoir_bounds_and_membership():
    rng = np.random.default_rng(0)
    rows = rng.standard_normal((1000, 3))
    res = Reservoir(capacity=50, seed=1)
    for start in range(0, 1000, 64):
        res.offer(rows[start : start + 64])
    assert len(res) == 50
    assert res.seen == 1000
    sample = res.sample()
    assert sample.shape == (50, 3)
    # every sampled row is one of the offered rows
    for row in sample:
        assert np.any(np.all(rows == row, axis=1))


def test_reservoir_deterministic_and_copying():
    rows = np.arange(40, dtype=np.float64).reshape(20, 2)
    a, b = Reservoir(5, seed=7), Reservoir(5, seed=7)
    a.offer(rows)
    b.offer(rows)
    assert np.array_equal(a.sample(), b.sample())
    # rows are copied on entry: mutating the source does not leak in
    src = np.ones((1, 2))
    c = Reservoir(5, seed=0)
    c.offer(src)
    src[:] = 99.0
    assert np.array_equal(c.sample(), np.ones((1, 2)))


def test_reservoir_small_stream_keeps_everything():
    res = Reservoir(capacity=16, seed=0)
    rows = np.arange(10, dtype=np.float64)[:, None]
    res.offer(rows)
    assert np.array_equal(res.sample(), rows)


def test_hub_reservoirs_via_observe():
    hub = TelemetryHub(reservoir_size=8, seed=0)
    hub.observe("queries", np.zeros((3, 4)))
    hub.observe("queries", np.ones((3, 4)))
    assert hub.reservoir("queries").shape == (6, 4)
    assert hub.reservoir("unknown").shape == (0, 0)


def test_consume_keeps_latest_snapshot():
    hub = TelemetryHub()
    hub.consume(component_stats("thing", counters={"x": 1}))
    hub.consume(component_stats("thing", counters={"x": 5}))
    assert hub.component("thing")["counters"]["x"] == 5
    assert hub.component("ghost") is None
    with pytest.raises(ParameterError):
        hub.consume({"counters": {}})  # no component name


def test_hub_stats_schema():
    hub = TelemetryHub()
    hub.count("c")
    hub.record("t", 0.5)
    hub.observe("r", np.zeros((2, 2)))
    hub.consume(component_stats("thing"))
    snap = hub.stats()
    for key in STATS_SCHEMA_KEYS:
        assert key in snap
    assert snap["component"] == "telemetry_hub"
    assert snap["counters"]["c"] == 1
    assert snap["timings"]["t"] == 0.5
    assert snap["gauges"]["reservoir.r"] == 2
    assert "thing" in snap["components"]


def test_validation():
    with pytest.raises(ParameterError):
        TelemetryHub(window=0)
    with pytest.raises(ParameterError):
        TelemetryHub(reservoir_size=0)
    with pytest.raises(ParameterError):
        Reservoir(0)


def test_thread_safety_of_counters():
    hub = TelemetryHub()

    def work():
        for _ in range(500):
            hub.count("hits")
            hub.record("lat", 1.0)
            hub.observe("rows", np.zeros((1, 2)))

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert hub.counter("hits") == 2000
    assert hub.n_recorded("lat") == 2000
