"""Tests for the telemetry hub, histograms, reservoirs, and exporters."""

import json
import threading

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.monitor import Histogram, Reservoir, TelemetryHub
from repro.stats import STATS_SCHEMA_KEYS, component_stats


def test_counters_accumulate():
    hub = TelemetryHub()
    hub.count("a")
    hub.count("a", 3)
    hub.count("b")
    assert hub.counter("a") == 4
    assert hub.counter("b") == 1
    assert hub.counter("never") == 0


def test_series_window_and_summaries():
    hub = TelemetryHub(window=4)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        hub.record("lat", v)
    window = hub.series("lat")
    assert window.tolist() == [3.0, 4.0, 5.0, 6.0]  # window trims oldest
    assert hub.mean("lat") == pytest.approx(4.5)
    assert hub.mean("lat", last=2) == pytest.approx(5.5)
    assert hub.last("lat") == 6.0
    assert hub.n_recorded("lat") == 6  # all-time count survives the trim
    assert hub.series("nope").size == 0
    assert np.isnan(hub.mean("nope"))
    assert np.isnan(hub.last("nope"))


def test_reservoir_bounds_and_membership():
    rng = np.random.default_rng(0)
    rows = rng.standard_normal((1000, 3))
    res = Reservoir(capacity=50, seed=1)
    for start in range(0, 1000, 64):
        res.offer(rows[start : start + 64])
    assert len(res) == 50
    assert res.seen == 1000
    sample = res.sample()
    assert sample.shape == (50, 3)
    # every sampled row is one of the offered rows
    for row in sample:
        assert np.any(np.all(rows == row, axis=1))


def test_reservoir_deterministic_and_copying():
    rows = np.arange(40, dtype=np.float64).reshape(20, 2)
    a, b = Reservoir(5, seed=7), Reservoir(5, seed=7)
    a.offer(rows)
    b.offer(rows)
    assert np.array_equal(a.sample(), b.sample())
    # rows are copied on entry: mutating the source does not leak in
    src = np.ones((1, 2))
    c = Reservoir(5, seed=0)
    c.offer(src)
    src[:] = 99.0
    assert np.array_equal(c.sample(), np.ones((1, 2)))


def test_reservoir_small_stream_keeps_everything():
    res = Reservoir(capacity=16, seed=0)
    rows = np.arange(10, dtype=np.float64)[:, None]
    res.offer(rows)
    assert np.array_equal(res.sample(), rows)


def test_hub_reservoirs_via_observe():
    hub = TelemetryHub(reservoir_size=8, seed=0)
    hub.observe("queries", np.zeros((3, 4)))
    hub.observe("queries", np.ones((3, 4)))
    assert hub.reservoir("queries").shape == (6, 4)
    assert hub.reservoir("unknown").shape == (0, 0)


def test_consume_keeps_latest_snapshot():
    hub = TelemetryHub()
    hub.consume(component_stats("thing", counters={"x": 1}))
    hub.consume(component_stats("thing", counters={"x": 5}))
    assert hub.component("thing")["counters"]["x"] == 5
    assert hub.component("ghost") is None
    with pytest.raises(ParameterError):
        hub.consume({"counters": {}})  # no component name


def test_hub_stats_schema():
    hub = TelemetryHub()
    hub.count("c")
    hub.record("t", 0.5)
    hub.observe("r", np.zeros((2, 2)))
    hub.consume(component_stats("thing"))
    snap = hub.stats()
    for key in STATS_SCHEMA_KEYS:
        assert key in snap
    assert snap["component"] == "telemetry_hub"
    assert snap["counters"]["c"] == 1
    assert snap["timings"]["t"] == 0.5
    assert snap["gauges"]["reservoir.r"] == 2
    assert "thing" in snap["components"]


def test_validation():
    with pytest.raises(ParameterError):
        TelemetryHub(window=0)
    with pytest.raises(ParameterError):
        TelemetryHub(reservoir_size=0)
    with pytest.raises(ParameterError):
        Reservoir(0)


def test_thread_safety_of_counters():
    hub = TelemetryHub()

    def work():
        for _ in range(500):
            hub.count("hits")
            hub.record("lat", 1.0)
            hub.observe("rows", np.zeros((1, 2)))

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert hub.counter("hits") == 2000
    assert hub.n_recorded("lat") == 2000


# ----------------------------------------------------------------------
# histograms
def test_histogram_percentiles_track_numpy():
    # a quantile estimate is off by at most one bucket width: a factor
    # of 10^(1/buckets_per_decade) ~ 1.78 at the default resolution
    factor = 10 ** (1 / 4)
    rng = np.random.default_rng(3)
    for sample in (
        rng.lognormal(mean=-4.0, sigma=1.0, size=4000),  # latency-shaped
        rng.uniform(1e-4, 1e-1, size=4000),
        rng.exponential(scale=0.01, size=4000),
    ):
        hist = Histogram()
        for v in sample:
            hist.add(v)
        for p in (50.0, 90.0, 95.0, 99.0):
            exact = float(np.percentile(sample, p))
            estimate = hist.percentile(p)
            assert exact / factor <= estimate <= exact * factor
        assert hist.mean == pytest.approx(float(sample.mean()))
        assert hist.count == sample.size


def test_histogram_estimates_clamp_to_observed_extremes():
    hist = Histogram()
    for v in (0.004, 0.005, 0.006):
        hist.add(v)
    assert hist.percentile(0) >= 0.004
    assert hist.percentile(100) <= 0.006
    assert hist.min == 0.004 and hist.max == 0.006


def test_histogram_out_of_range_values_are_never_dropped():
    hist = Histogram(lo=1e-3, hi=1.0)
    hist.add(1e-9)   # below lo: first bucket
    hist.add(100.0)  # past hi: overflow bucket
    hist.add(0.0)
    assert hist.count == 3
    assert int(hist.counts.sum()) == 3
    assert hist.percentile(100) == pytest.approx(100.0)


def test_histogram_merge_and_validation():
    a, b = Histogram(), Histogram()
    rng = np.random.default_rng(0)
    xs = rng.uniform(0.001, 0.1, size=200)
    for v in xs[:100]:
        a.add(v)
    for v in xs[100:]:
        b.add(v)
    merged = a.merge(b)
    assert merged is a
    assert a.count == 200
    assert a.total == pytest.approx(float(xs.sum()))
    with pytest.raises(ParameterError):
        a.merge(Histogram(bounds=[0.1, 1.0]))
    with pytest.raises(ParameterError):
        Histogram(lo=0.0)
    with pytest.raises(ParameterError):
        Histogram(buckets_per_decade=0)
    with pytest.raises(ParameterError):
        Histogram(bounds=[1.0, 1.0])
    with pytest.raises(ParameterError):
        Histogram().quantile(1.5)


def test_histogram_empty_snapshot():
    snap = Histogram().snapshot()
    assert snap["count"] == 0
    assert snap["mean"] is None and snap["p99"] is None
    assert np.isnan(Histogram().quantile(0.5))


def test_hub_percentile_readers():
    hub = TelemetryHub(window=8)  # window far smaller than the stream
    rng = np.random.default_rng(1)
    sample = rng.lognormal(mean=-5.0, sigma=0.7, size=1000)
    for v in sample:
        hub.record("lat", v)
    # the histogram answers over the whole stream, not the window
    assert hub.histogram("lat").count == 1000
    p95, exact = hub.percentile("lat", 95), float(np.percentile(sample, 95))
    assert exact / 10 ** 0.25 <= p95 <= exact * 10 ** 0.25
    assert hub.histogram("nope") is None
    assert np.isnan(hub.percentile("nope", 50))


# ----------------------------------------------------------------------
# bounded stream cardinality
def test_series_cardinality_is_fifo_bounded():
    hub = TelemetryHub(max_series=2)
    hub.record("a", 1.0)
    hub.record("b", 2.0)
    hub.record("c", 3.0)  # evicts "a", the oldest-registered
    assert hub.series("a").size == 0
    assert hub.last("b") == 2.0 and hub.last("c") == 3.0
    assert hub.stats()["counters"]["telemetry.evicted_series"] == 1


def test_counter_and_component_cardinality_bounded():
    hub = TelemetryHub(max_counters=3, max_components=1)
    for name in ("a", "b", "c", "d"):
        hub.count(name)
    assert hub.counter("a") == 0 and hub.counter("d") == 1
    hub.consume(component_stats("one"))
    hub.consume(component_stats("two"))
    assert hub.component("one") is None
    assert hub.component("two") is not None
    counters = hub.stats()["counters"]
    assert counters["telemetry.evicted_counters"] >= 1
    assert counters["telemetry.evicted_components"] == 1
    with pytest.raises(ParameterError):
        TelemetryHub(max_series=0)


# ----------------------------------------------------------------------
# labeled views
def test_labeled_hub_prefixes_streams_and_components():
    hub = TelemetryHub()
    shard = hub.labeled("shard0")
    shard.count("hits", 2)
    shard.record("lat", 0.5)
    shard.observe("queries", np.zeros((2, 3)))
    shard.consume(component_stats("engine", counters={"n": 1}))
    assert hub.counter("shard0.hits") == 2
    assert hub.last("shard0.lat") == 0.5
    assert hub.reservoir("shard0.queries").shape == (2, 3)
    assert hub.component("shard0.engine")["counters"]["n"] == 1
    # reads through the view resolve the same prefixed names
    assert shard.counter("hits") == 2
    assert shard.last("lat") == 0.5
    assert shard.n_recorded("lat") == 1
    assert shard.histogram("lat").count == 1
    assert shard.percentile("lat", 50) == pytest.approx(0.5)
    assert shard.component("engine")["counters"]["n"] == 1
    # nesting composes prefixes; whole-hub surfaces delegate
    nested = shard.labeled("cache")
    nested.count("hits")
    assert hub.counter("shard0.cache.hits") == 1
    assert nested.stats() is not None
    assert "repro_shard0_hits_total 2" in shard.export_text()
    with pytest.raises(ParameterError):
        hub.labeled("")
    with pytest.raises(ParameterError):
        hub.labeled(".bad")


def test_one_hub_aggregates_two_engines_with_distinct_labels():
    from repro.datasets import gaussian_blobs
    from repro.engine import ValuationEngine

    data = gaussian_blobs(n_train=100, n_test=6, n_features=4, seed=21)
    hub = TelemetryHub()
    engines = [
        ValuationEngine(data.x_train, data.y_train, 3).attach_telemetry(
            hub.labeled(f"shard{i}")
        )
        for i in range(2)
    ]
    for engine in engines:
        engine.value(data.x_test, data.y_test, method="exact")
    for label in ("shard0", "shard1"):
        assert hub.n_recorded(f"{label}.engine.request_seconds") == 1
    text = hub.export_text()
    assert "repro_shard0_engine_request_seconds_count 1" in text
    assert "repro_shard1_engine_request_seconds_count 1" in text


# ----------------------------------------------------------------------
# export surfaces
def _populated_hub() -> TelemetryHub:
    hub = TelemetryHub(window=4)
    hub.count("engine.requests", 3)
    for v in (0.001, 0.004, 0.02, 0.3, 0.7):
        hub.record("engine.request_seconds", v)
    hub.observe("queries", np.ones((3, 2)))
    hub.consume(
        component_stats(
            "backend.lsh",
            counters={"queries": 7},
            timings={"build_seconds": 0.5},
            gauges={"tables": np.int64(4)},
        )
    )
    return hub


def test_export_json_is_json_serializable_and_faithful():
    hub = _populated_hub()
    snap = hub.export_json()
    roundtrip = json.loads(json.dumps(snap))
    assert roundtrip == snap
    assert snap["schema"] == 1
    assert snap["counters"]["engine.requests"] == 3
    series = snap["series"]["engine.request_seconds"]
    assert series["count"] == 5
    assert series["total"] == pytest.approx(1.025)
    assert series["window"] == [0.004, 0.02, 0.3, 0.7]  # rolled past window=4
    assert series["rollouts"] == 1
    assert series["histogram"]["count"] == 5
    assert series["histogram"]["p50"] is not None
    assert snap["reservoirs"]["queries"] == {
        "rows": 3,
        "seen": 3,
        "capacity": 256,
    }
    assert snap["components"]["backend.lsh"]["counters"]["queries"] == 7
    assert snap["limits"]["window"] == 4
    assert snap["evictions"] == {
        "series": 0,
        "counters": 0,
        "reservoirs": 0,
        "components": 0,
    }


def test_export_text_prometheus_shape():
    text = _populated_hub().export_text()
    lines = text.strip().splitlines()
    assert text.endswith("\n")
    assert "# TYPE repro_engine_requests_total counter" in lines
    assert "repro_engine_requests_total 3" in lines
    # the series exports as a cumulative-bucket histogram
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in lines
        if line.startswith('repro_engine_request_seconds_bucket{')
    ]
    assert buckets == sorted(buckets)  # cumulative: monotone
    assert buckets[-1] == 5
    assert 'repro_engine_request_seconds_bucket{le="+Inf"} 5' in lines
    assert "repro_engine_request_seconds_count 5" in lines
    assert any(line.startswith("repro_engine_request_seconds_sum ") for line in lines)
    # reservoir + eviction + consumed-component surfaces
    assert "repro_reservoir_queries_rows 3" in lines
    assert "repro_telemetry_evicted_series_total 0" in lines
    assert "repro_backend_lsh_queries_total 7" in lines
    assert "repro_backend_lsh_build_seconds 0.5" in lines
    assert "repro_backend_lsh_tables 4" in lines


def test_export_text_emits_series_min_max_gauges():
    hub = TelemetryHub()
    for v in (0.002, 0.5, 0.03):
        hub.record("engine.request_seconds", v)
    lines = hub.export_text().splitlines()
    assert "# TYPE repro_engine_request_seconds_min gauge" in lines
    assert "repro_engine_request_seconds_min 0.002" in lines
    assert "repro_engine_request_seconds_max 0.5" in lines
    # an empty series exports no extremes (there are none to report)
    hub2 = TelemetryHub()
    hub2.record("lat", 1.0)
    hub2.series("lat")  # touch, no extra records
    text = TelemetryHub().export_text()
    assert "_min" not in text and "_max" not in text


def test_export_text_escapes_awkward_metric_names():
    hub = TelemetryHub()
    hub.count("engine.weighted-path.k=2")
    hub.record("latency (ms)/phase", 0.25)
    text = hub.export_text()
    # every metric line is alphanumeric/underscore/colon only
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        metric = line.split("{")[0].split(" ")[0]
        assert all(c.isalnum() or c in "_:" for c in metric), metric
    assert "repro_engine_weighted_path_k_2_total 1" in text.splitlines()
    assert any(
        line.startswith("repro_latency__ms__phase_count")
        for line in text.splitlines()
    )


def test_eviction_counters_are_per_kind():
    hub = TelemetryHub(max_series=2, max_counters=2, max_reservoirs=1)
    for i in range(5):
        hub.record(f"series{i}", 1.0)
        hub.count(f"counter{i}")
        hub.observe(f"res{i}", np.ones((1, 2)))
    stats = hub.stats()
    assert stats["counters"]["telemetry.evicted_series"] == 3
    assert stats["counters"]["telemetry.evicted_counters"] == 3
    assert stats["counters"]["telemetry.evicted_reservoirs"] == 4
    assert stats["counters"]["telemetry.evicted_components"] == 0
    text = hub.export_text()
    assert "repro_telemetry_evicted_series_total 3" in text.splitlines()


def test_eviction_under_concurrent_record_is_consistent():
    """Hammer a small-capped hub from many threads; the FIFO caps and
    the per-kind eviction counters must stay exact."""
    hub = TelemetryHub(max_series=8, max_counters=8)
    n_threads, n_names = 8, 40
    start = threading.Barrier(n_threads)

    def worker(tid):
        start.wait()
        for i in range(n_names):
            hub.record(f"t{tid}.series{i}", float(i))
            hub.count(f"t{tid}.counter{i}")

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    stats = hub.stats()
    created = n_threads * n_names
    # exactly (created - cap) of each kind were evicted, none lost
    assert stats["counters"]["telemetry.evicted_series"] == created - 8
    assert stats["counters"]["telemetry.evicted_counters"] == created - 8
    assert stats["gauges"]["n_series"] == 8
    assert stats["gauges"]["n_counters"] == 8
    # the survivors are intact and the export stays well-formed
    assert hub.export_text().startswith("# TYPE")
