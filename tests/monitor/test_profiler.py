"""Tests for the sampling profiler and span-based phase attribution."""

import time

import numpy as np
import pytest

from repro.engine import ValuationEngine
from repro.exceptions import ParameterError
from repro.monitor import (
    SamplingProfiler,
    TraceLog,
    Tracer,
    phase_attribution,
    phase_of,
)


def _busy_for_profiler(deadline):
    """A distinctly named frame the sampler should catch."""
    acc = 0.0
    while time.monotonic() < deadline:
        acc += sum(i * i for i in range(500))
    return acc


def test_sampler_catches_a_busy_function():
    profiler = SamplingProfiler(hz=200.0)
    with profiler:
        _busy_for_profiler(time.monotonic() + 0.4)
    snapshot = profiler.snapshot()
    assert snapshot["samples"] > 0
    collapsed = profiler.collapsed()
    assert "_busy_for_profiler" in collapsed
    # collapsed-stack format: "frame;frame;... count" per line
    for line in collapsed.splitlines():
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1 and stack
    top_frames = [row["frame"] for row in profiler.top(50)]
    assert any("_busy_for_profiler" in f for f in top_frames)


def test_sampler_start_stop_reset_lifecycle():
    profiler = SamplingProfiler(hz=50.0)
    assert not profiler.running
    profiler.start()
    assert profiler.running
    profiler.start()  # idempotent
    time.sleep(0.05)
    profiler.stop()
    assert not profiler.running
    assert profiler.snapshot()["active_seconds"] > 0.0
    profiler.reset()
    assert profiler.snapshot()["samples"] == 0
    with pytest.raises(ParameterError):
        SamplingProfiler(hz=0.0)


def test_stack_table_is_bounded_with_eviction_counter():
    profiler = SamplingProfiler(hz=10.0, max_stacks=2)
    for name in ("aa", "bb", "cc", "dd"):
        exec(
            f"def {name}():\n    profiler.sample_once(None)\n{name}()",
            {"profiler": profiler},
        )
    snapshot = profiler.snapshot()
    assert snapshot["distinct_stacks"] <= 2
    assert snapshot["evicted_stacks"] >= 2


def test_phase_of_prefix_mapping():
    assert phase_of("engine.request") == "engine"
    assert phase_of("engine.chunk") == "chunk"
    assert phase_of("kernel.exact") == "kernel"
    assert phase_of("backend.rank") == "backend"
    assert phase_of("service.job") == "service"
    assert phase_of("router.request") == "router"
    assert phase_of("shard.query") == "router"
    assert phase_of("something.else") == "other"


def test_phase_attribution_self_time_telescopes():
    spans = [
        {"span_id": "r", "parent_id": None, "name": "engine.request", "seconds": 1.0},
        {"span_id": "c", "parent_id": "r", "name": "engine.chunk", "seconds": 0.8},
        {"span_id": "k", "parent_id": "c", "name": "kernel.exact", "seconds": 0.5},
        {"span_id": "b", "parent_id": "c", "name": "backend.rank", "seconds": 0.2},
    ]
    report = phase_attribution(spans)
    assert report["total_seconds"] == pytest.approx(1.0)
    assert report["span_count"] == 4
    phases = report["phases"]
    assert phases["engine"]["seconds"] == pytest.approx(0.2)  # 1.0 - 0.8
    assert phases["chunk"]["seconds"] == pytest.approx(0.1)  # 0.8 - 0.7
    assert phases["kernel"]["seconds"] == pytest.approx(0.5)
    assert phases["backend"]["seconds"] == pytest.approx(0.2)
    assert sum(p["seconds"] for p in phases.values()) == pytest.approx(1.0)
    assert sum(p["fraction"] for p in phases.values()) == pytest.approx(1.0)


def test_phase_attribution_accepts_a_nested_tree():
    tree = {
        "span_id": "r",
        "parent_id": None,
        "name": "engine.request",
        "seconds": 2.0,
        "children": [
            {
                "span_id": "k",
                "parent_id": "r",
                "name": "kernel.exact",
                "seconds": 1.5,
                "children": [],
            }
        ],
    }
    report = phase_attribution(tree)
    assert report["total_seconds"] == pytest.approx(2.0)
    assert report["phases"]["kernel"]["seconds"] == pytest.approx(1.5)
    assert report["phases"]["engine"]["seconds"] == pytest.approx(0.5)


def test_phase_attribution_empty_input():
    report = phase_attribution([])
    assert report["total_seconds"] == 0.0
    assert report["phases"] == {}


def test_attribution_matches_engine_request_on_traced_workload():
    """Acceptance: per-phase attribution sums within 10% of the
    engine.request span's wall time on a sequential traced request."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1500, 8))
    y = rng.integers(0, 2, 1500)
    log = TraceLog()
    engine = (
        ValuationEngine(x, y, 3, n_workers=1, cache=False)
        .attach_tracer(Tracer(log=log))
    )
    result = engine.value(
        rng.standard_normal((16, 8)), rng.integers(0, 2, 16), method="exact"
    )
    tree = result.extra["trace"]
    assert tree["name"] == "engine.request"
    report = phase_attribution(tree)
    attributed = sum(p["seconds"] for p in report["phases"].values())
    assert attributed == pytest.approx(tree["seconds"], rel=1e-9)
    assert abs(report["total_seconds"] - tree["seconds"]) <= 0.10 * tree["seconds"]
    # the flat TraceLog records of the same trace agree with the tree
    flat = phase_attribution(log.records(trace_id=tree["trace_id"]))
    assert flat["total_seconds"] == pytest.approx(report["total_seconds"])
