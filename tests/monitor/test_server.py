"""Tests for the ObservabilityServer HTTP surface."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import ValuationEngine, ValuationService
from repro.monitor import (
    AlertManager,
    ObservabilityServer,
    SamplingProfiler,
    SLOTracker,
    TelemetryHub,
)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type", ""), err.read()


@pytest.fixture()
def service():
    rng = np.random.default_rng(0)
    engine = ValuationEngine(
        rng.standard_normal((200, 4)), rng.integers(0, 2, 200), 3
    )
    with ValuationService(engine, n_workers=1) as svc:
        yield svc


def test_all_endpoints_respond(service):
    hub = TelemetryHub()
    service.engine.attach_telemetry(hub)
    slo = SLOTracker(hub)
    slo.add("lat", "engine.request_seconds p99 < 1s")
    alerts = AlertManager(hub, slo=slo)
    profiler = SamplingProfiler(hz=10.0)
    server = ObservabilityServer(
        target=service, hub=hub, slo=slo, alerts=alerts, profiler=profiler
    ).start()
    try:
        assert server.url.startswith("http://127.0.0.1:")
        status, ctype, body = _get(server.url + "/metrics")
        assert status == 200 and ctype.startswith("text/plain")
        assert b"repro_" in body

        status, ctype, body = _get(server.url + "/health")
        doc = json.loads(body)
        assert status == 200 and doc["status"] == "ok"
        assert "/slo" in doc["endpoints"]
        assert doc["uptime_seconds"] >= 0.0

        status, _, body = _get(server.url + "/ready")
        assert status == 200 and json.loads(body)["status"] == "ready"

        status, _, body = _get(server.url + "/slo")
        assert status == 200 and json.loads(body)["slos"][0]["name"] == "lat"

        status, _, body = _get(server.url + "/alerts")
        assert status == 200 and json.loads(body)["active"] == []

        status, _, body = _get(server.url + "/profile")
        assert status == 200  # collapsed text (may be empty: not running)
        status, _, body = _get(server.url + "/profile?format=json")
        assert status == 200 and json.loads(body)["schema"] == 1

        # the server counts its own traffic into the hub
        assert hub.counter("ops.http.metrics") == 1
    finally:
        server.stop()


def test_ready_flips_to_503_after_shutdown():
    rng = np.random.default_rng(1)
    engine = ValuationEngine(
        rng.standard_normal((100, 4)), rng.integers(0, 2, 100), 3
    )
    service = ValuationService(engine, n_workers=1)
    server = ObservabilityServer(target=service, hub=TelemetryHub()).start()
    try:
        assert _get(server.url + "/ready")[0] == 200
        service.shutdown()
        status, _, body = _get(server.url + "/ready")
        assert status == 503
        assert json.loads(body)["status"] == "unready"
    finally:
        server.stop()


def test_unattached_endpoints_return_404_with_hints():
    server = ObservabilityServer(hub=TelemetryHub()).start()
    try:
        for path in ("/slo", "/alerts", "/profile"):
            status, _, body = _get(server.url + path)
            assert status == 404, path
            assert b"error" in body
        status, _, body = _get(server.url + "/no-such")
        assert status == 404
        assert "/metrics" in json.loads(body)["endpoints"]
        # bare / serves /health, trailing slashes are normalized
        assert _get(server.url + "/")[0] == 200
        assert _get(server.url + "/metrics/")[0] == 200
    finally:
        server.stop()


def test_no_hub_metrics_404_and_ready_without_target():
    server = ObservabilityServer().start()
    try:
        assert _get(server.url + "/metrics")[0] == 404
        # no target: the server itself being up means ready
        assert _get(server.url + "/ready")[0] == 200
    finally:
        server.stop()


def test_labeled_shard_views_round_trip_through_metrics():
    """Satellite: per-shard labeled hub views stay distinct streams all
    the way through the Prometheus exposition."""
    hub = TelemetryHub()
    for i, latency in enumerate((0.01, 0.02)):
        view = hub.labeled(f"shard{i}")
        view.record("engine.request_seconds", latency)
        view.count("engine.retrievals", 5 * (i + 1))
    server = ObservabilityServer(hub=hub).start()
    try:
        _, _, body = _get(server.url + "/metrics")
    finally:
        server.stop()
    text = body.decode()
    for i in range(2):
        prefix = f"repro_shard{i}_engine_request_seconds"
        assert f"{prefix}_count 1" in text
        assert f"{prefix}_sum" in text
        assert f"repro_shard{i}_engine_retrievals_total {5 * (i + 1)}" in text
    # the two shards' observed extremes survive as min/max gauges
    assert "repro_shard0_engine_request_seconds_max 0.01" in text
    assert "repro_shard1_engine_request_seconds_max 0.02" in text


def test_server_stats_schema():
    server = ObservabilityServer(hub=TelemetryHub()).start()
    try:
        _get(server.url + "/health")
        stats = server.stats()
        assert stats["component"] == "observability_server"
        assert stats["counters"]["requests"] == 1
        assert stats["gauges"]["running"] == 1
    finally:
        server.stop()
