"""Tests for the drift detectors."""

import numpy as np
import pytest

from repro.engine import BruteForceBackend, LSHNeighborBackend
from repro.exceptions import ParameterError
from repro.lsh import ContrastEstimate, LSHParameters, contrast_drift
from repro.monitor import (
    CandidateDriftDetector,
    ContrastDriftDetector,
    RecallProxyDetector,
    SizeDriftDetector,
    TelemetryHub,
    TombstoneDetector,
    default_detectors,
)


@pytest.fixture()
def fitted_backend():
    """A tuned LSH backend serving a stable workload."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((400, 8))
    q = rng.standard_normal((32, 8))
    backend = LSHNeighborBackend(seed=0).fit(x)
    hub = TelemetryHub(seed=0)
    backend.telemetry = hub
    backend.prepare(q, 5)
    backend.query(q, 5)  # sets the candidate baseline, fills the reservoir
    return backend, hub, x, q


def test_contrast_drift_helper():
    tuned = ContrastEstimate(d_mean=1.0, d_k=0.5, contrast=2.0, k=5)
    same = ContrastEstimate(d_mean=4.0, d_k=2.0, contrast=2.0, k=5)
    assert contrast_drift(tuned, same, scale=0.25) == pytest.approx(0.0)
    shifted = ContrastEstimate(d_mean=8.0, d_k=4.0, contrast=2.0, k=5)
    # pure rescaling: contrast unchanged, normalized d_mean off by 2x
    assert contrast_drift(tuned, shifted, scale=0.25) == pytest.approx(1.0)
    sharper = ContrastEstimate(d_mean=4.0, d_k=1.0, contrast=4.0, k=5)
    assert contrast_drift(tuned, sharper, scale=0.25) == pytest.approx(1.0)
    with pytest.raises(ParameterError):
        contrast_drift(
            ContrastEstimate(d_mean=0.0, d_k=1.0, contrast=0.0, k=1), same
        )


def test_contrast_detector_quiet_on_stable_data(fitted_backend):
    backend, hub, _, _ = fitted_backend
    det = ContrastDriftDetector(backend, hub, rel_tol=0.25, seed=0)
    assert det.check() == []
    # the measured drift is streamed for dashboards either way
    assert hub.n_recorded("backend.lsh.contrast_drift") == 1


def test_contrast_detector_fires_on_scale_shift(fitted_backend):
    backend, hub, _, q = fitted_backend
    # traffic moved to a 8x wider distribution: D_mean blows up while
    # the relative contrast stays put — exactly the drift a width tuned
    # in normalized space cannot survive
    hub.observe("queries", q * 8.0)
    det = ContrastDriftDetector(backend, hub, rel_tol=0.25, seed=0)
    signals = det.check()
    assert len(signals) == 1
    sig = signals[0]
    assert sig.kind == "contrast-drift"
    assert sig.action == "retune"
    assert sig.value > 0.25
    assert sig.severity in ("warn", "critical")
    assert sig.details["sample_size"] >= det.min_queries


def test_contrast_detector_needs_reservoir(fitted_backend):
    backend, _, _, _ = fitted_backend
    empty = TelemetryHub()
    det = ContrastDriftDetector(backend, empty, seed=0)
    assert det.check() == []  # nothing sampled yet -> no opinion


def test_candidate_detector(fitted_backend):
    backend, hub, _, q = fitted_backend
    det = CandidateDriftDetector(backend, hub, rel_tol=0.5, min_batches=3)
    backend.query(q, 5)
    backend.query(q, 5)
    assert det.check() == []  # stable traffic, stable candidates
    # candidate collapse: the effective width went stale
    for _ in range(8):
        hub.record("backend.lsh.mean_candidates", 0.5)
    signals = det.check()
    assert len(signals) == 1
    assert signals[0].kind == "candidate-drift"
    assert signals[0].action == "retune"


def test_tombstone_detector(fitted_backend):
    backend, _, _, _ = fitted_backend
    det = TombstoneDetector(backend, max_ratio=0.1)
    assert det.check() == []
    backend.forget(np.arange(60))  # 60/400 = 15% tombstoned
    signals = det.check()
    assert len(signals) == 1
    assert signals[0].kind == "tombstone-pressure"
    assert signals[0].action == "compact"
    assert signals[0].value == pytest.approx(backend.tombstone_ratio)
    with pytest.raises(ParameterError):
        TombstoneDetector(backend, max_ratio=1.5)


def test_size_drift_detector(fitted_backend):
    backend, _, x, _ = fitted_backend
    det = SizeDriftDetector(backend)
    assert det.check() == []
    backend.on_drift = lambda b: True  # silence: a scheduler would own this
    rng = np.random.default_rng(1)
    backend.partial_fit(rng.standard_normal((200, 8)))  # +50% of tuned n
    signals = det.check()
    assert len(signals) == 1
    assert signals[0].kind == "size-drift"
    assert signals[0].action == "refit"
    assert signals[0].value > backend.refit_drift


def test_recall_proxy_full_recall_is_quiet():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((150, 6))
    q = rng.standard_normal((16, 6))
    params = LSHParameters(
        width=1e9,
        n_bits=1,
        n_tables=2,
        g=0.5,
        contrast=ContrastEstimate(d_mean=1.0, d_k=0.5, contrast=2.0, k=3),
    )
    backend = LSHNeighborBackend(params=params, seed=0).fit(x)
    hub = TelemetryHub(seed=0)
    backend.telemetry = hub
    backend.prepare(q, 3)
    backend.query(q, 3)
    det = RecallProxyDetector(backend, hub, k=3, floor=0.9, seed=0)
    assert det.check() == []
    assert hub.last("backend.lsh.recall_proxy") == pytest.approx(1.0)


def test_recall_proxy_fires_on_bad_index():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((150, 6))
    q = rng.standard_normal((16, 6))
    # a deliberately hopeless configuration: one table, long code,
    # near-zero width -> essentially no collisions, recall ~ 0
    params = LSHParameters(
        width=0.01,
        n_bits=12,
        n_tables=1,
        g=1.0,
        contrast=ContrastEstimate(d_mean=1.0, d_k=0.5, contrast=2.0, k=3),
    )
    backend = LSHNeighborBackend(params=params, seed=0).fit(x)
    hub = TelemetryHub(seed=0)
    backend.telemetry = hub
    backend.prepare(q, 3)
    backend.query(q, 3)
    det = RecallProxyDetector(backend, hub, k=3, floor=0.9, seed=0)
    signals = det.check()
    assert len(signals) == 1
    assert signals[0].kind == "recall-degraded"
    assert signals[0].value < 0.5
    assert signals[0].action == "retune"


def test_spot_checks_do_not_feed_telemetry(fitted_backend):
    backend, hub, _, _ = fitted_backend
    queries_before = backend.stats()["counters"]["queries"]
    recorded_before = hub.n_recorded("backend.lsh.mean_candidates")
    det = RecallProxyDetector(backend, hub, k=5, floor=0.5, seed=0)
    det.check()
    # the spot check retrieved through the backend, but neither the
    # query counter nor the candidate stream saw its traffic
    assert backend.stats()["counters"]["queries"] == queries_before
    assert hub.n_recorded("backend.lsh.mean_candidates") == recorded_before
    assert hub.n_recorded("backend.lsh.recall_proxy") == 1


def test_default_detectors_battery(fitted_backend):
    backend, hub, _, _ = fitted_backend
    battery = default_detectors(backend, hub, k=5)
    kinds = {type(d).__name__ for d in battery}
    assert kinds == {
        "SizeDriftDetector",
        "TombstoneDetector",
        "ContrastDriftDetector",
        "CandidateDriftDetector",
        "RecallProxyDetector",
    }
    # exact backends have no tuned parameters to watch
    assert default_detectors(BruteForceBackend(), hub) == []


def test_contrast_hysteresis_dead_band(fitted_backend):
    """After firing once, the effective trip level rises to
    rel_tol * hysteresis until the drift falls back below rel_tol — a
    workload hovering at the threshold fires once, not every check."""
    backend, hub, _, q = fitted_backend
    hub.observe("queries", q * 8.0)  # large scale shift: way past trip
    det = ContrastDriftDetector(
        backend, hub, rel_tol=0.25, seed=0, hysteresis=1e9
    )
    first = det.check()
    assert len(first) == 1
    assert first[0].details["hysteresis"] == 1e9
    # same drifted traffic, second check: inside the (huge) dead band
    assert det.check() == []
    # traffic back at the tuned distribution re-arms the detector
    # (fresh hub: the reservoir is a sample of *all* queries ever seen,
    # so the old shifted rows would otherwise linger in the estimate)
    calm = TelemetryHub(seed=0)
    calm.observe("queries", q)
    det.hub = calm
    assert det.check() == []
    assert det._armed
    # ...so the next excursion past rel_tol fires again
    calm.observe("queries", q * 8.0)
    assert len(det.check()) == 1


def test_contrast_hysteresis_validation(fitted_backend):
    backend, hub, _, _ = fitted_backend
    with pytest.raises(ParameterError):
        ContrastDriftDetector(backend, hub, hysteresis=0.9)


def test_default_detectors_forward_hysteresis(fitted_backend):
    backend, hub, _, _ = fitted_backend
    battery = default_detectors(backend, hub, contrast_hysteresis=2.0)
    contrast = [
        d for d in battery if isinstance(d, ContrastDriftDetector)
    ]
    assert len(contrast) == 1 and contrast[0].hysteresis == 2.0
