"""Tests for declarative SLOs, error budgets, and burn-rate policies."""

import json
import urllib.request

import pytest

from repro.exceptions import ParameterError
from repro.monitor import (
    AlertManager,
    BurnPolicy,
    ErrorRateObjective,
    LatencyObjective,
    ObservabilityServer,
    SLOTracker,
    TelemetryHub,
    parse_objective,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


def test_parse_latency_objective_units():
    obj = parse_objective("engine.request_seconds p99 < 50ms")
    assert isinstance(obj, LatencyObjective)
    assert obj.stream == "engine.request_seconds"
    assert obj.threshold == pytest.approx(0.050)
    assert obj.target == pytest.approx(0.99)
    assert parse_objective("s p50 < 200us").threshold == pytest.approx(2e-4)
    assert parse_objective("s p90 < 2s").threshold == pytest.approx(2.0)


def test_parse_error_rate_objective():
    obj = parse_objective("service.jobs_failed / service.jobs_done < 1%")
    assert isinstance(obj, ErrorRateObjective)
    assert obj.bad_counter == "service.jobs_failed"
    assert obj.total_counter == "service.jobs_done"
    assert obj.target == pytest.approx(0.99)


def test_parse_rejects_malformed_specs():
    for bad in ("latency below 5", "s p99 < 50 parsecs", "a / b < 1", ""):
        with pytest.raises(ParameterError):
            parse_objective(bad)


def test_burn_policy_validation_and_name():
    policy = BurnPolicy(300.0, 3600.0, 14.4, "critical")
    assert policy.short_window < policy.long_window
    assert "14.4" in policy.name
    with pytest.raises(ParameterError):
        BurnPolicy(3600.0, 300.0, 14.4, "critical")  # short >= long


def test_latency_good_count_interpolates_within_bucket():
    hub = TelemetryHub()
    for v in (0.001,) * 90 + (1.0,) * 10:
        hub.record("lat", v)
    good, total = LatencyObjective("lat", 0.050, 0.99).cumulative(hub)
    assert total == pytest.approx(100.0)
    assert good == pytest.approx(90.0, abs=1.0)  # the 1 s tail is bad


def test_error_rate_cumulative_reads_counters():
    hub = TelemetryHub()
    hub.count("bad", 3)
    hub.count("all", 100)
    good, total = ErrorRateObjective("bad", "all", 0.99).cumulative(hub)
    assert (good, total) == (97.0, 100.0)


def _drive(hub, slo, clock, seconds, n, value, stream="svc.lat"):
    """Advance ``seconds`` in 10 steps, recording ``n`` observations."""
    for _ in range(10):
        clock.advance(seconds / 10.0)
        for _ in range(max(1, n // 10)):
            hub.record(stream, value)
        slo.tick()


def test_burn_rate_windows_with_fake_clock():
    hub = TelemetryHub()
    clock = FakeClock()
    slo = SLOTracker(hub, clock=clock)
    slo.add("lat", "svc.lat p99 < 50ms")

    _drive(hub, slo, clock, 600.0, 1000, 0.001)
    assert slo.burn_rate("lat", window=300.0) == pytest.approx(0.0)

    # every request bad => bad fraction 1.0 => burn = 1 / (1 - 0.99)
    _drive(hub, slo, clock, 300.0, 500, 0.5)
    assert slo.burn_rate("lat", window=300.0) == pytest.approx(100.0, rel=0.05)
    # the 1 h window dilutes the burst but still burns
    assert 10.0 < slo.burn_rate("lat", window=3600.0) < 100.0


def test_worst_burn_matches_stream_prefix():
    hub = TelemetryHub()
    clock = FakeClock()
    slo = SLOTracker(hub, clock=clock)
    slo.add("s0", "shard0.engine.request_seconds p99 < 50ms")
    slo.add("s1", "shard1.engine.request_seconds p99 < 50ms")
    _drive(hub, slo, clock, 600.0, 100, 0.001, stream="shard0.engine.request_seconds")
    _drive(hub, slo, clock, 600.0, 100, 0.5, stream="shard1.engine.request_seconds")
    assert slo.worst_burn(prefix="shard1") > slo.worst_burn(prefix="shard0")
    assert slo.worst_burn() == slo.worst_burn(prefix="shard1")
    assert slo.worst_burn(prefix="no-such-shard") == 0.0


def test_budget_accounting_over_tracked_period():
    hub = TelemetryHub()
    clock = FakeClock()
    slo = SLOTracker(hub, clock=clock)
    slo.add("lat", "svc.lat p99 < 50ms")
    _drive(hub, slo, clock, 600.0, 990, 0.001)
    _drive(hub, slo, clock, 600.0, 10, 0.5)
    (status,) = slo.evaluate()
    # ~1% bad over the period is exactly one budget spent
    assert status["budget_consumed"] == pytest.approx(1.0, rel=0.2)
    assert status["attainment"] == pytest.approx(0.99, abs=0.005)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def test_induced_regression_fires_over_http_and_recovery_resolves():
    """The PR's acceptance flow: regression -> /slo + /alerts report the
    firing burn-rate alert -> recovery resolves it."""
    hub = TelemetryHub()
    clock = FakeClock()
    slo = SLOTracker(hub, clock=clock)
    slo.add("latency", "service.job.latency p99 < 50ms")
    alerts = AlertManager(hub, slo=slo)
    server = ObservabilityServer(hub=hub, slo=slo, alerts=alerts).start()
    try:
        _drive(hub, slo, clock, 600.0, 1000, 0.001, stream="service.job.latency")
        alerts.evaluate()
        status, doc = _get(server.url + "/slo")
        assert status == 200 and not doc["slos"][0]["firing"]

        # induced latency regression: every request violates the SLO
        _drive(hub, slo, clock, 300.0, 500, 0.5, stream="service.job.latency")
        alerts.evaluate()
        _, doc = _get(server.url + "/slo")
        (slo_status,) = doc["slos"]
        assert slo_status["firing"] and slo_status["severity"] == "critical"
        assert any(
            w["firing"] and w["burn_short"] >= w["factor"]
            for w in slo_status["windows"].values()
        )
        _, alerts_doc = _get(server.url + "/alerts")
        assert any(a["name"] == "slo.latency" for a in alerts_doc["active"])

        # recovery drains both burn windows and resolves the alert
        _drive(hub, slo, clock, 3600.0, 20000, 0.001, stream="service.job.latency")
        alerts.evaluate()
        _, doc = _get(server.url + "/slo")
        assert not doc["slos"][0]["firing"]
        _, alerts_doc = _get(server.url + "/alerts")
        assert alerts_doc["active"] == []
        states = [(h["name"], h["state"]) for h in alerts_doc["history"]]
        assert ("slo.latency", "firing") in states
        assert ("slo.latency", "resolved") in states
    finally:
        server.stop()


def test_monotone_reset_clears_the_sample_ring():
    hub = TelemetryHub()
    clock = FakeClock()
    slo = SLOTracker(hub, clock=clock)
    slo.add("err", "bad / all < 1%")
    hub.count("all", 100)
    slo.tick()
    clock.advance(60.0)
    hub.count("all", 100)
    slo.tick()
    # simulate a counter reset (new hub generation) via a fresh tracker
    # reading a hub whose totals went backwards
    state = slo._states["err"]
    state.append(clock() + 60.0, 10.0, 10.0)  # total dropped 200 -> 10
    assert state.total[-1] == 10.0
    assert len(state.times) == 1  # the ring restarted at the reset


def test_tracker_stats_schema():
    hub = TelemetryHub()
    slo = SLOTracker(hub)
    slo.add("lat", "svc.lat p99 < 50ms")
    slo.evaluate()
    stats = slo.stats()
    assert stats["component"] == "slo_tracker"
    assert stats["counters"]["evaluations"] == 1
    assert stats["gauges"]["n_slos"] == 1
