"""Tests for the maintenance scheduler — the detect-plan-act loop."""

import time
import warnings

import numpy as np
import pytest

from repro.engine import LSHNeighborBackend, ValuationEngine, ValuationService
from repro.exceptions import ParameterError
from repro.knn.search import top_k
from repro.lsh import ContrastEstimate, LSHParameters
from repro.monitor import (
    MaintenanceScheduler,
    TombstoneDetector,
    attach_monitoring,
)


def _full_recall_params(k: int = 3) -> LSHParameters:
    """One bucket per table: retrieval is exhaustive, brute-equivalent."""
    return LSHParameters(
        width=1e9,
        n_bits=1,
        n_tables=2,
        g=0.5,
        contrast=ContrastEstimate(d_mean=1.0, d_k=0.5, contrast=2.0, k=k),
    )


def _recall(backend, queries, k) -> float:
    """Brute-force recall proxy of ``backend`` on held-out queries."""
    data = backend.data
    k_eff = min(k, data.shape[0])
    true_idx, _ = top_k(queries, data, k_eff)
    got_idx, _ = backend.spot_query(queries, k_eff)
    hits = sum(
        int(np.isin(true_idx[j], got_idx[j]).sum())
        for j in range(true_idx.shape[0])
    )
    return hits / float(true_idx.size)


def test_requires_engine_or_backend():
    with pytest.raises(ParameterError):
        MaintenanceScheduler()
    with pytest.raises(ParameterError):
        MaintenanceScheduler(backend=LSHNeighborBackend(), interval=0.0)


def test_scheduler_adopts_a_pre_attached_hub():
    """A hub the engine already publishes into must be the one the
    detectors read — a private hub would leave monitoring silently
    inert (empty reservoirs, no drift ever detected)."""
    from repro.monitor import TelemetryHub

    rng = np.random.default_rng(40)
    eng = ValuationEngine(
        rng.standard_normal((200, 4)),
        rng.integers(0, 2, 200),
        3,
        backend="lsh",
        backend_options={"seed": 0},
    )
    mine = TelemetryHub()
    eng.attach_telemetry(mine)
    sched = MaintenanceScheduler(engine=eng, interval=100.0)
    assert sched.hub is mine
    eng.value(
        rng.standard_normal((8, 4)), rng.integers(0, 2, 8), method="lsh"
    )
    assert sched.hub.reservoir("queries").shape[0] == 8
    # an explicit hub wins and is re-attached through the engine
    other = TelemetryHub()
    sched2 = MaintenanceScheduler(engine=eng, hub=other, interval=100.0)
    assert sched2.hub is other
    assert eng.telemetry is other


def test_stop_rearms_the_warned_refit():
    """A stopped scheduler must not keep swallowing drift deferrals —
    nothing would ever drain them."""
    rng = np.random.default_rng(41)
    x = rng.standard_normal((200, 4))
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(x)
    backend.prepare(None, 3)
    sched = MaintenanceScheduler(backend=backend, interval=30.0)
    sched.start()
    sched.stop()
    assert backend.on_drift is None
    with pytest.warns(RuntimeWarning, match="drifted more than"):
        backend.partial_fit(rng.standard_normal((110, 4)))
    # restarting re-arms the silent path
    sched.start()
    try:
        assert backend.on_drift is not None
    finally:
        sched.stop()


def test_scheduler_attaches_one_hub_end_to_end():
    rng = np.random.default_rng(0)
    eng = ValuationEngine(
        rng.standard_normal((100, 4)), rng.integers(0, 2, 100), 3
    )
    sched = MaintenanceScheduler(engine=eng, interval=100.0)
    assert eng.telemetry is sched.hub
    assert eng.backend.telemetry is sched.hub
    # exact backend -> empty detector battery, cycles are no-ops
    assert sched.detectors == []
    assert sched.run_once() == []


def test_scheduler_silences_warned_refit_and_retunes():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((200, 6))
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(x)
    backend.prepare(None, 5)
    sched = MaintenanceScheduler(backend=backend, interval=100.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any RuntimeWarning fails the test
        backend.partial_fit(rng.standard_normal((110, 6)))  # +55% drift
    counters = backend.stats()["counters"]
    assert counters["deferred_refits"] >= 1
    assert counters["warned_refits"] == 0
    assert backend.needs_refit
    events = sched.run_once()
    assert len(events) == 1
    assert events[0].action == "retune"
    assert events[0].ok
    assert not backend.needs_refit  # re-tuned for the grown size
    assert backend.tuned_n == 310
    assert backend.stats()["counters"]["retunes"] == 1


def test_without_scheduler_the_warning_still_fires():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((200, 6))
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(x)
    backend.prepare(None, 5)
    with pytest.warns(RuntimeWarning, match="drifted more than"):
        backend.partial_fit(rng.standard_normal((110, 6)))
    assert backend.stats()["counters"]["warned_refits"] == 1


def test_plan_collapses_to_strongest_action():
    rng = np.random.default_rng(3)
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(
        rng.standard_normal((100, 4))
    )
    sched = MaintenanceScheduler(backend=backend, interval=100.0, detectors=[])
    assert sched.plan([]) is None
    compact = _signal("tombstone-pressure", "compact")
    retune = _signal("contrast-drift", "retune")
    refit = _signal("size-drift", "refit")
    assert sched.plan([compact]) == "compact"
    assert sched.plan([compact, retune]) == "retune"
    assert sched.plan([refit]) == "retune"  # a refit re-tunes by design


def _signal(kind, action):
    from repro.monitor import DriftSignal

    return DriftSignal(
        kind=kind,
        severity="warn",
        value=1.0,
        threshold=0.5,
        action=action,
        detector="test",
    )


def test_injected_shift_triggers_background_retune_to_fresh_recall():
    """The acceptance scenario: synthetic cluster migration at constant n.

    The whole training set migrates to an 6x wider distribution through
    in-band add/remove churn; the live index's tuning goes stale
    (recall collapses), the detectors flag it, one background cycle
    re-tunes with a contrast estimate from the telemetry reservoir —
    and the recovered recall matches a freshly tuned index, with zero
    warnings along the way.
    """
    n, d, k = 800, 8, 3
    shift = 6.0
    rng = np.random.default_rng(4)
    x = rng.standard_normal((n, d))
    y = rng.integers(0, 2, n)
    eng = ValuationEngine(x, y, k, backend="lsh", backend_options={"seed": 0})
    sched = MaintenanceScheduler(engine=eng, interval=1000.0)

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        q0 = rng.standard_normal((32, d))
        eng.value(q0, rng.integers(0, 2, 32), method="lsh")  # tunes + builds
        assert sched.run_once() == []  # stable: nothing to do

        batch = n // 5
        for _ in range(5):  # migrate 20% at a time, n stays constant
            x_new = rng.standard_normal((batch, d)) * shift
            eng.add_points(x_new, rng.integers(0, 2, batch))
            eng.remove_points(np.arange(batch))  # oldest sellers leave
            q_new = rng.standard_normal((16, d)) * shift
            eng.value(q_new, rng.integers(0, 2, 16), method="lsh")
        assert eng.n_train == n  # constant-n migration

        backend = eng.backend
        k_built = backend.built_k
        eval_q = rng.standard_normal((64, d)) * shift
        recall_degraded = _recall(backend, eval_q, k_built)

        events = sched.run_once()  # the background maintenance cycle
        assert len(events) == 1
        assert events[0].action == "retune"
        assert events[0].ok
        assert events[0].signals  # drift signals drove it
        kinds = {s.kind for s in events[0].signals}
        assert kinds & {"contrast-drift", "candidate-drift", "recall-degraded"}
        recall_after = _recall(backend, eval_q, k_built)

    # control: a freshly tuned index given the same information (same
    # data, same query sample, same seed)
    sample = sched.hub.reservoir("queries")
    fresh = LSHNeighborBackend(seed=0).fit(backend.data)
    fresh.prepare(sample, k_built)
    recall_fresh = _recall(fresh, eval_q, k_built)

    assert recall_after >= recall_fresh - 0.02  # the acceptance bar
    assert recall_fresh > 0.8  # the control is actually healthy
    assert recall_after > recall_degraded + 0.2  # and recovery is real
    assert backend.stats()["counters"]["retunes"] >= 1
    assert backend.tombstone_ratio == 0.0  # the rebuild compacted
    # the audit trail is queryable
    assert sched.stats()["counters"]["action_retune"] >= 1


def test_maintenance_preserves_serving_bit_for_bit():
    """Compaction under concurrent serving: results never change.

    On unchanged data (an add immediately undone by the matching
    remove), valuations before, during, and after a background
    compaction return bit-identical vectors — maintenance is invisible
    to clients.
    """
    n, d, k = 200, 5, 3
    rng = np.random.default_rng(5)
    x = rng.standard_normal((n, d))
    y = rng.integers(0, 2, n)
    q = rng.standard_normal((16, d))
    yq = rng.integers(0, 2, 16)
    backend = LSHNeighborBackend(params=_full_recall_params(k), seed=0)
    eng = ValuationEngine(x, y, k, backend=backend)
    sched = MaintenanceScheduler(
        engine=eng,
        interval=1000.0,
        detectors=[TombstoneDetector(backend, max_ratio=0.05)],
    )
    base = eng.value(q, yq, method="lsh").values.copy()

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        # churn that round-trips the data: 30 sellers join then leave
        z = rng.standard_normal((30, d))
        idx = eng.add_points(z, rng.integers(0, 2, 30))
        eng.remove_points(idx)
        assert backend.tombstone_ratio > 0.05  # compaction is due

        mid = eng.value(q, yq, method="lsh").values
        assert np.array_equal(mid, base)

        with ValuationService(eng, n_workers=2) as service:
            jobs = [service.submit_batch(q, yq, method="lsh") for _ in range(4)]
            events = sched.run_once()  # compacts while workers serve
            jobs += [service.submit_batch(q, yq, method="lsh") for _ in range(4)]
            values = [job.result(timeout=60).values for job in jobs]
        assert [e.action for e in events] == ["compact"]
        assert events[0].ok and events[0].details["scrubbed"] == 30
        for v in values:
            assert np.array_equal(v, base)

    assert backend.tombstone_ratio == 0.0
    after = eng.value(q, yq, method="lsh").values
    assert np.array_equal(after, base)
    assert backend.stats()["counters"]["compactions"] == 1


def test_background_thread_lifecycle_and_poke():
    rng = np.random.default_rng(6)
    x = rng.standard_normal((150, 4))
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(x)
    backend.prepare(None, 3)
    sched = MaintenanceScheduler(backend=backend, interval=30.0)
    with sched:
        assert sched.running
        # a drifted mutation wakes the loop immediately (no interval wait)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend.partial_fit(rng.standard_normal((80, 4)))
        deadline = time.time() + 10.0
        while backend.needs_refit and time.time() < deadline:
            time.sleep(0.02)
        assert not backend.needs_refit
        assert any(e.action == "retune" and e.ok for e in sched.log)
    assert not sched.running
    sched.start()
    sched.poke()
    sched.stop()
    assert not sched.running


def test_attach_monitoring_one_liner():
    rng = np.random.default_rng(7)
    eng = ValuationEngine(
        rng.standard_normal((120, 4)),
        rng.integers(0, 2, 120),
        3,
        backend="lsh",
        backend_options={"seed": 0},
    )
    sched = attach_monitoring(eng, interval=60.0)
    try:
        assert sched.running
        assert eng.telemetry is sched.hub
        assert eng.backend.on_drift is not None
        assert len(sched.detectors) == 5
    finally:
        sched.stop()


def test_failed_action_lands_in_log_not_in_face():
    rng = np.random.default_rng(8)
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(
        rng.standard_normal((100, 4))
    )
    backend.prepare(None, 3)
    sched = MaintenanceScheduler(backend=backend, interval=100.0, detectors=[])
    original = backend.retune
    backend.retune = lambda **kw: (_ for _ in ()).throw(RuntimeError("boom"))
    try:
        sched._pending.add("refit")
        events = sched.run_once()
    finally:
        backend.retune = original
    assert len(events) == 1
    assert not events[0].ok
    assert "boom" in events[0].error
    assert sched.hub.counter("maintenance.errors") == 1
    assert sched.stats()["counters"]["failures"] == 1


def test_retune_debounce_defers_but_never_drops():
    """With a minimum re-tune spacing, back-to-back drifted mutations
    execute one re-tune; the second intent stays pending and runs once
    the spacing elapses — deferral, not loss."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal((200, 6))
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(x)
    backend.prepare(None, 5)
    sched = MaintenanceScheduler(
        backend=backend, interval=100.0, min_retune_interval=30.0
    )
    backend.partial_fit(rng.standard_normal((110, 6)))  # drifted: defers
    events = sched.run_once()
    assert len(events) == 1 and events[0].action == "retune"
    assert backend.stats()["counters"]["retunes"] == 1

    backend.partial_fit(rng.standard_normal((160, 6)))  # drifts again
    assert sched.run_once() == []  # debounced: inside the spacing window
    stats = sched.stats()
    assert stats["counters"]["debounced_retunes"] == 1
    assert stats["gauges"]["min_retune_interval"] == 30.0
    assert backend.stats()["counters"]["retunes"] == 1
    assert backend.needs_refit  # the drift is still there, still pending

    # once the spacing has elapsed the deferred intent executes
    sched._last_retune_monotonic -= 31.0
    events = sched.run_once()
    assert len(events) == 1 and events[0].action == "retune"
    assert backend.stats()["counters"]["retunes"] == 2
    assert not backend.needs_refit


def test_debounce_never_blocks_compactions():
    rng = np.random.default_rng(8)
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(
        rng.standard_normal((120, 4))
    )
    backend.prepare(None, 5)
    sched = MaintenanceScheduler(
        backend=backend,
        interval=100.0,
        min_retune_interval=1e6,
        detectors=[TombstoneDetector(backend, max_ratio=0.05)],
    )
    sched._last_retune_monotonic = __import__("time").monotonic()
    backend.forget(np.arange(10))  # tombstones past the detector ratio
    events = sched.run_once()
    assert len(events) == 1 and events[0].action == "compact"
    assert sched.stats()["counters"]["debounced_retunes"] == 0


def test_scheduler_validates_debounce_and_hysteresis():
    backend = LSHNeighborBackend()
    with pytest.raises(ParameterError):
        MaintenanceScheduler(backend=backend, min_retune_interval=-1.0)
    with pytest.raises(ParameterError):
        MaintenanceScheduler(backend=backend, contrast_hysteresis=0.5)


def test_scheduler_forwards_hysteresis_to_default_battery():
    from repro.monitor import ContrastDriftDetector

    rng = np.random.default_rng(9)
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(
        rng.standard_normal((100, 4))
    )
    sched = MaintenanceScheduler(
        backend=backend, interval=100.0, contrast_hysteresis=1.5
    )
    contrast = [
        d for d in sched.detectors if isinstance(d, ContrastDriftDetector)
    ]
    assert len(contrast) == 1 and contrast[0].hysteresis == 1.5
    assert sched.stats()["gauges"]["contrast_hysteresis"] == 1.5


def test_debounced_retune_falls_back_to_requested_compact():
    """A deferred re-tune must not also swallow a same-cycle compact:
    compaction is result-preserving and exempt from the debounce."""
    rng = np.random.default_rng(10)
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(
        rng.standard_normal((200, 4))
    )
    backend.prepare(None, 5)
    sched = MaintenanceScheduler(
        backend=backend,
        interval=100.0,
        min_retune_interval=1e6,
        detectors=[TombstoneDetector(backend, max_ratio=0.05)],
    )
    sched._last_retune_monotonic = time.monotonic()  # recent re-tune
    backend.partial_fit(rng.standard_normal((110, 4)))  # drift: wants retune
    backend.forget(np.arange(30))  # tombstones: wants compact
    events = sched.run_once()
    assert [e.action for e in events] == ["compact"]
    assert sched.stats()["counters"]["debounced_retunes"] == 1
    assert backend.stats()["counters"]["retunes"] == 0
    assert backend.tombstone_ratio == 0.0  # the compact really ran


# ----------------------------------------------------------------------
# the ops plane hookups (PR 9): alerts hear maintenance, SLO burn steers it
def test_maintenance_signals_and_actions_flow_into_alerts():
    from repro.monitor import AlertManager, TelemetryHub

    rng = np.random.default_rng(4)
    x = rng.standard_normal((200, 6))
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(x)
    backend.prepare(None, 5)
    hub = TelemetryHub()
    alerts = AlertManager(hub)
    sched = MaintenanceScheduler(
        backend=backend, hub=hub, interval=100.0, alerts=alerts
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        backend.partial_fit(rng.standard_normal((110, 6)))  # +55% drift

    events = sched.run_once()
    assert events and events[0].action == "retune" and events[0].ok

    history = alerts.snapshot(last=64)["history"]
    names = [h["name"] for h in history]
    # the drift signals arrived as drift.* events, the executed action
    # as a maintenance.* event — all through the same notification path
    assert any(n.startswith("drift.") for n in names)
    assert "maintenance.retune" in names
    entry = next(h for h in history if h["name"] == "maintenance.retune")
    assert entry["severity"] == "info" and "ok" in entry["message"]
    assert float(entry["labels"]["seconds"]) >= 0.0
    assert sched.stats()["gauges"]["alerts_attached"] == 1


def test_unit_burn_ranks_the_burning_shard_first():
    from types import SimpleNamespace

    from repro.monitor import SLOTracker, TelemetryHub

    hub = TelemetryHub()
    clock = [0.0]
    slo = SLOTracker(hub, clock=lambda: clock[0])
    slo.add("s0", "shard0.engine.request_seconds p99 < 50ms")
    slo.add("s1", "shard1.engine.request_seconds p99 < 50ms")
    for _ in range(10):
        clock[0] += 60.0
        for _ in range(50):
            hub.record("shard0.engine.request_seconds", 0.001)  # healthy
            hub.record("shard1.engine.request_seconds", 0.5)  # burning
        slo.tick()

    rng = np.random.default_rng(5)
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(
        rng.standard_normal((100, 4))
    )
    sched = MaintenanceScheduler(
        backend=backend, hub=hub, interval=100.0, detectors=[], slo=slo
    )
    burn0 = sched._unit_burn(SimpleNamespace(label="shard0"))
    burn1 = sched._unit_burn(SimpleNamespace(label="shard1"))
    assert burn1 > burn0  # the burning shard outranks the healthy one
    # the unlabeled single-engine unit sees the whole tracker
    assert sched._unit_burn(SimpleNamespace(label=None)) == burn1
    assert sched.stats()["gauges"]["slo_attached"] == 1

    # a broken tracker is counted, never raised
    class Broken:
        def worst_burn(self, prefix=""):
            raise RuntimeError("tracker down")

    sched.slo = Broken()
    assert sched._unit_burn(SimpleNamespace(label="shard0")) == 0.0
    assert hub.counter("maintenance.slo_errors") == 1
