"""Tests for request tracing across facade, engine, and service."""

import json

import numpy as np
import pytest

from repro.datasets import gaussian_blobs
from repro.engine import ValuationEngine, ValuationRequest, ValuationService
from repro.monitor import NOOP_TRACER, TelemetryHub, TraceContext, TraceLog, Tracer
from repro.monitor.dump import format_trace, group_traces, load_spans, main
from repro.valuation import KNNShapleyValuator


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(n_train=120, n_test=8, n_features=5, seed=11)


def _names(tree: dict) -> set:
    """Every span name in a summary tree."""
    out = {tree["name"]}
    for child in tree["children"]:
        out |= _names(child)
    return out


def _find(tree: dict, name: str) -> list:
    found = [tree] if tree["name"] == name else []
    for child in tree["children"]:
        found.extend(_find(child, name))
    return found


# ----------------------------------------------------------------------
# zero-cost default
def test_untraced_engine_produces_no_trace(data):
    engine = ValuationEngine(data.x_train, data.y_train, 3)
    assert engine.tracer is NOOP_TRACER
    result = engine.value(data.x_test, data.y_test, method="exact")
    assert "trace" not in result.extra


def test_null_tracer_is_inert():
    with NOOP_TRACER.span("anything", key=1) as span:
        assert not span
        span.set("more", 2)
        assert span.context() is None
        assert span.summary() is None
    assert NOOP_TRACER.current() is None
    with NOOP_TRACER.activate(TraceContext("t", "s")):
        pass


# ----------------------------------------------------------------------
# span trees per engine-served method
def test_exact_request_span_tree_is_complete(data):
    engine = ValuationEngine(data.x_train, data.y_train, 3).attach_tracer(
        Tracer(log=TraceLog())
    )
    result = engine.value(data.x_test, data.y_test, method="exact")
    tree = result.extra["trace"]
    assert tree["name"] == "engine.request"
    assert tree["attributes"]["method"] == "exact"
    assert tree["attributes"]["kernel"] == "exact"
    assert tree["attributes"]["cache"] == "miss"
    assert tree["seconds"] > 0
    names = _names(tree)
    assert {"engine.chunk", "backend.rank", "kernel.exact", "engine.merge"} <= names
    # every chunk rank-queried the backend and ran the kernel
    for chunk in _find(tree, "engine.chunk"):
        child_names = {c["name"] for c in chunk["children"]}
        assert {"backend.rank", "kernel.exact"} <= child_names
    # the repeat request serves from the rank cache: no backend span
    repeat = engine.value(data.x_test, data.y_test, method="exact")
    tree2 = repeat.extra["trace"]
    assert tree2["attributes"]["cache"] == "hit"
    assert "backend.rank" not in _names(tree2)
    assert tree2["trace_id"] != tree["trace_id"]  # separate root requests


def test_truncated_request_traces_backend_queries(data):
    engine = ValuationEngine(data.x_train, data.y_train, 3).attach_tracer(Tracer())
    result = engine.value(
        data.x_test, data.y_test, method="truncated", epsilon=0.2
    )
    tree = result.extra["trace"]
    assert tree["attributes"]["method"] == "truncated"
    assert "k_star" in tree["attributes"]
    names = _names(tree)
    assert {
        "backend.prepare",
        "engine.chunk",
        "backend.query",
        "kernel.truncated",
        "engine.merge",
    } <= names


def test_weighted_request_records_execution_path(data):
    engine = ValuationEngine(
        data.x_train, data.y_train, 3, task="classification"
    ).attach_tracer(Tracer())
    result = engine.value(data.x_test, data.y_test, method="weighted")
    tree = result.extra["trace"]
    assert tree["attributes"]["kernel"] == "weighted"
    assert tree["attributes"]["weighted_path"] in (
        "k1",
        "piecewise",
        "vectorized",
        "streaming",
        "reference",
    )
    assert "kernel.weighted" in _names(tree)


def test_mutations_are_traced(data):
    log = TraceLog()
    engine = ValuationEngine(data.x_train, data.y_train, 3).attach_tracer(
        Tracer(log=log)
    )
    engine.add_points(data.x_test[:2], data.y_test[:2])
    engine.remove_points([0])
    kinds = [
        r["attributes"]["kind"]
        for r in log.records()
        if r["name"] == "engine.mutate"
    ]
    assert kinds == ["add", "remove"]


# ----------------------------------------------------------------------
# facade spans
def test_facade_span_parents_the_engine_request(data):
    log = TraceLog()
    valuator = KNNShapleyValuator(data, k=3).attach_tracer(Tracer(log=log))
    result = valuator.exact()
    tree = result.extra["trace"]
    facades = [r for r in log.records() if r["name"] == "facade.exact"]
    assert len(facades) == 1
    assert facades[0]["trace_id"] == tree["trace_id"]
    assert tree["parent_id"] == facades[0]["span_id"]
    assert facades[0]["parent_id"] is None  # the facade is the trace root
    assert facades[0]["attributes"]["k"] == 3


def test_facade_traces_every_engine_served_method(data):
    log = TraceLog()
    valuator = KNNShapleyValuator(data, k=2).attach_tracer(Tracer(log=log))
    valuator.exact()
    valuator.truncated(epsilon=0.2)
    valuator.weighted()
    valuator.lsh(seed=0)
    roots = {r["name"] for r in log.records() if r["parent_id"] is None}
    assert {
        "facade.exact",
        "facade.truncated",
        "facade.weighted",
        "facade.lsh",
    } <= roots


# ----------------------------------------------------------------------
# trace propagation across the service's worker threads
def test_service_jobs_join_the_submitters_trace(data):
    log = TraceLog()
    tracer = Tracer(log=log)
    engine = ValuationEngine(data.x_train, data.y_train, 3).attach_tracer(tracer)
    with ValuationService(engine, n_workers=2) as service:
        with tracer.span("client.batch") as client:
            jobs = [
                service.submit_batch(data.x_test, data.y_test, tag=f"c{i}")
                for i in range(4)
            ]
        for job in jobs:
            job.result(timeout=60)
        trace_id = client.trace_id
    records = log.records(trace_id=trace_id)
    by_name: dict = {}
    for r in records:
        by_name.setdefault(r["name"], []).append(r)
    # every job executed on a worker thread but joined the client trace
    assert len(by_name["service.job"]) == 4
    assert len(by_name["engine.request"]) == 4
    for job_span in by_name["service.job"]:
        assert job_span["parent_id"] == client.context().span_id
        assert job_span["attributes"]["status"] == "done"
        assert job_span["attributes"]["queue_seconds"] >= 0.0
    # requests submitted outside any span start traces of their own
    with ValuationService(engine, n_workers=1) as service:
        service.submit_batch(data.x_test, data.y_test).result(timeout=60)
    fresh = [
        r
        for r in log.records()
        if r["name"] == "service.job" and r["trace_id"] != trace_id
    ]
    assert len(fresh) == 1


def test_explicit_trace_context_on_request(data):
    log = TraceLog()
    tracer = Tracer(log=log)
    engine = ValuationEngine(data.x_train, data.y_train, 3).attach_tracer(tracer)
    ctx = TraceContext("feedbeeffeedbeef", "77")
    with ValuationService(engine, n_workers=1) as service:
        request = ValuationRequest(
            data.x_test, data.y_test, method="exact", trace=ctx
        )
        service.submit(request).result(timeout=60)
    jobs = log.records(trace_id="feedbeeffeedbeef")
    names = {r["name"] for r in jobs}
    assert "service.job" in names and "engine.request" in names


# ----------------------------------------------------------------------
# the trace log and its CLI
def test_tracelog_ring_bound_and_dropped_counter():
    log = TraceLog(capacity=4)
    for i in range(7):
        log.append({"trace_id": "t", "span_id": str(i), "name": "s", "seconds": 0.0})
    assert len(log) == 4
    assert log.dropped == 3
    assert [r["span_id"] for r in log.records()] == ["3", "4", "5", "6"]
    with pytest.raises(ValueError):
        TraceLog(capacity=0)


def test_tracelog_jsonl_and_dump_cli(tmp_path, capsys, data):
    path = str(tmp_path / "trace.jsonl")
    with TraceLog(path=path) as log:
        engine = ValuationEngine(data.x_train, data.y_train, 3).attach_tracer(
            Tracer(log=log)
        )
        engine.value(data.x_test, data.y_test, method="exact")
        engine.value(data.x_test, data.y_test, method="truncated", epsilon=0.2)
    spans = load_spans(path)
    assert len(spans) == len(log.records())
    for line in open(path):
        json.loads(line)  # every line is standalone JSON
    traces = group_traces(spans)
    assert len(traces) == 2
    trace_id = next(iter(traces))
    rendered = format_trace(trace_id, traces[trace_id])
    assert "engine.request" in rendered and "engine.chunk" in rendered

    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "trace " in out and "engine.request" in out
    assert main([path, "--summary"]) == 0
    assert "engine.merge" in capsys.readouterr().out
    assert main([path, "--trace", trace_id, "--last", "1"]) == 0
    capsys.readouterr()
    assert main([path, "--trace", "no-such-trace"]) == 1


def test_span_durations_stream_into_a_hub(data):
    hub = TelemetryHub()
    engine = ValuationEngine(data.x_train, data.y_train, 3).attach_tracer(
        Tracer(hub=hub)
    )
    engine.value(data.x_test, data.y_test, method="exact")
    assert hub.n_recorded("span.engine.request.seconds") == 1
    assert hub.n_recorded("span.engine.merge.seconds") == 1
    assert hub.last("span.engine.request.seconds") > 0


def test_span_failure_is_attributed():
    log = TraceLog()
    tracer = Tracer(log=log)
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("nope")
    (record,) = log.records()
    assert record["attributes"]["error"] == "RuntimeError"
    assert record["seconds"] >= 0.0


def test_numpy_attributes_serialize(tmp_path):
    path = str(tmp_path / "np.jsonl")
    with TraceLog(path=path) as log:
        tracer = Tracer(log=log)
        with tracer.span("op", n=np.int64(3), v=np.float64(0.5), arr=np.arange(2)):
            pass
    (record,) = load_spans(path)
    assert record["attributes"]["n"] == 3
    assert record["attributes"]["v"] == 0.5


def test_dump_since_cutoff_parsing():
    from repro.monitor.dump import since_cutoff

    assert since_cutoff("1754650000", newest_ts=0.0) == 1754650000.0
    assert since_cutoff("30s", newest_ts=1000.0) == 970.0
    assert since_cutoff("5m", newest_ts=1000.0) == 700.0
    assert since_cutoff("2h", newest_ts=10000.0) == 2800.0
    assert since_cutoff(" 2H ", newest_ts=10000.0) == 2800.0
    with pytest.raises(ValueError):
        since_cutoff("yesterday", newest_ts=0.0)
    with pytest.raises(ValueError):
        since_cutoff("5 parsecs", newest_ts=0.0)


def test_dump_cli_trace_id_alias_and_since_filter(tmp_path, capsys):
    path = str(tmp_path / "trace.jsonl")
    spans = [
        {
            "trace_id": f"trace{i}",
            "span_id": f"s{i}",
            "parent_id": None,
            "name": f"engine.request.{i}",
            "seconds": 0.01,
            "ts": 1000.0 + 100.0 * i,
        }
        for i in range(3)
    ]
    with open(path, "w") as fh:
        for span in spans:
            fh.write(json.dumps(span) + "\n")

    # --trace-id is an alias of --trace
    assert main([path, "--trace-id", "trace1"]) == 0
    out = capsys.readouterr().out
    assert "trace trace1" in out and "trace0" not in out

    # --since with an age relative to the newest span (ts 1200)
    assert main([path, "--since", "150s"]) == 0
    out = capsys.readouterr().out
    assert "trace2" in out and "trace1" in out and "trace0" not in out

    # --since with an absolute epoch keeps only the newest trace
    assert main([path, "--since", "1150"]) == 0
    out = capsys.readouterr().out
    assert "trace2" in out and "trace1" not in out

    # a cutoff past every span prints the empty-log message
    assert main([path, "--since", "99999"]) == 0
    assert "(no spans)" in capsys.readouterr().out

    # filters compose: --since narrows before --summary aggregates
    assert main([path, "--since", "150s", "--summary"]) == 0
    out = capsys.readouterr().out
    assert "engine.request.2" in out and "engine.request.0" not in out

    # a malformed --since is a usage error, not a crash
    assert main([path, "--since", "soon"]) == 2
    assert "--since" in capsys.readouterr().err
