"""Tests for the timing helpers."""

import time

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.metrics import fit_loglog_slope, time_call


def test_time_call_returns_value_and_positive_time():
    result = time_call(lambda: 41 + 1, repeat=2)
    assert result.value == 42
    assert result.seconds >= 0
    assert len(result.all_runs) == 2
    assert result.seconds == min(result.all_runs)


def test_time_call_measures_sleep():
    result = time_call(lambda: time.sleep(0.01))
    assert result.seconds >= 0.009


def test_time_call_warmup_runs(rng):
    calls = []
    time_call(lambda: calls.append(1), repeat=1, warmup=2)
    assert len(calls) == 3


def test_time_call_rejects_bad_repeat():
    with pytest.raises(ParameterError):
        time_call(lambda: None, repeat=0)


def test_loglog_slope_linear():
    sizes = np.array([100, 200, 400, 800])
    times = 3e-6 * sizes
    assert fit_loglog_slope(sizes, times) == pytest.approx(1.0, abs=0.01)


def test_loglog_slope_quadratic():
    sizes = np.array([100, 200, 400, 800])
    times = 1e-8 * sizes.astype(float) ** 2
    assert fit_loglog_slope(sizes, times) == pytest.approx(2.0, abs=0.01)


def test_loglog_slope_validation():
    with pytest.raises(ParameterError):
        fit_loglog_slope([100], [1.0])
    with pytest.raises(ParameterError):
        fit_loglog_slope([100, 200], [0.0, 1.0])
