"""Tests for the error and correlation metrics."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.metrics import (
    max_abs_error,
    mean_abs_error,
    pearson_correlation,
    rank_of,
    spearman_correlation,
    top_k_overlap,
)


def test_max_and_mean_abs_error():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([1.5, 2.0, 1.0])
    assert max_abs_error(a, b) == pytest.approx(2.0)
    assert mean_abs_error(a, b) == pytest.approx(2.5 / 3)


def test_errors_validate_shapes():
    with pytest.raises(DataValidationError):
        max_abs_error(np.zeros(3), np.zeros(4))
    with pytest.raises(DataValidationError):
        mean_abs_error(np.array([]), np.array([]))


def test_pearson_perfect_and_inverse():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
    assert pearson_correlation(x, -x) == pytest.approx(-1.0)


def test_pearson_constant_vector_is_zero():
    assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0


def test_rank_of_with_ties():
    ranks = rank_of(np.array([10.0, 20.0, 20.0, 5.0]))
    np.testing.assert_allclose(ranks, [2.0, 3.5, 3.5, 1.0])


def test_spearman_matches_scipy():
    from scipy import stats

    rng = np.random.default_rng(3)
    for _ in range(5):
        a = rng.standard_normal(20)
        b = rng.standard_normal(20) + 0.5 * a
        expected = stats.spearmanr(a, b).statistic
        assert spearman_correlation(a, b) == pytest.approx(expected, abs=1e-10)


def test_spearman_with_ties_matches_scipy():
    from scipy import stats

    a = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 4.0])
    b = np.array([2.0, 1.0, 1.0, 3.0, 4.0, 4.0])
    expected = stats.spearmanr(a, b).statistic
    assert spearman_correlation(a, b) == pytest.approx(expected, abs=1e-10)


def test_top_k_overlap():
    a = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
    b = np.array([5.0, 4.0, 1.0, 2.0, 3.0])
    assert top_k_overlap(a, b, 2) == 1.0
    assert top_k_overlap(a, b, 3) == pytest.approx(2 / 3)
    with pytest.raises(DataValidationError):
        top_k_overlap(a, b, 6)
