"""Tests for the experiment reporting machinery."""

from pathlib import Path

from repro.experiments import (
    ExperimentResult,
    format_result,
    format_table,
    write_experiments_md,
)


def _result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="figure-x",
        title="A test table",
        columns=("a", "b"),
        rows=[{"a": 1, "b": 0.123456}, {"a": 2, "b": 1e-6}],
        paper_claim="claims something",
        observed="observed something",
        metadata={"seed": 0},
    )


def test_format_table_alignment():
    out = format_table(("a", "b"), [{"a": 1, "b": 2.0}])
    lines = out.splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("a")
    assert "-" in lines[1]


def test_format_table_missing_cell():
    out = format_table(("a", "b"), [{"a": 1}])
    assert "1" in out


def test_format_result_contains_claims():
    text = format_result(_result())
    assert "figure-x" in text
    assert "claims something" in text
    assert "observed something" in text


def test_column_extraction():
    result = _result()
    assert result.column("a") == [1, 2]


def test_write_experiments_md(tmp_path: Path):
    path = tmp_path / "EXPERIMENTS.md"
    write_experiments_md([_result()], path)
    text = path.read_text()
    assert "# EXPERIMENTS" in text
    assert "figure-x" in text
    assert "**Paper:**" in text
    assert "```" in text
