"""Smoke tests: every experiment function runs at miniature scale and
returns a structurally valid result whose headline shape holds."""


from repro.experiments import (
    figure5_mc_convergence,
    figure8_accuracy_table,
    figure9_contrast_vs_kstar,
    figure10_g_vs_epsilon,
    figure10_g_vs_width,
    figure11_permutation_sizes,
    figure12_weighted_runtime,
    figure13_multidata_runtime,
    figure14_value_semantics,
    figure15_composite_game,
    figure16_surrogate_correlation,
)


def test_figure5_error_shrinks():
    res = figure5_mc_convergence(
        n_train=120, n_test=4, permutation_grid=(5, 50, 400), seed=1
    )
    errs = res.column("max_abs_error")
    assert errs[-1] < errs[0]
    assert res.column("pearson_r")[-1] > 0.9


def test_figure8_knn_competitive():
    res = figure8_accuracy_table(n_train=1000, n_test=200, seed=1)
    for row in res.rows:
        # "comparable" at this scale: KNN well above chance and within
        # a modest gap of the (linearly-separable-perfect) logistic fit
        assert row["logistic"] - row["5nn"] < 0.2
        assert row["1nn"] > 0.5
    # contrast/accuracy ordering: yahoo-like is the easiest, as in paper
    by_name = {r["dataset"]: r for r in res.rows}
    assert by_name["yahoo10m"]["1nn"] >= by_name["imagenet"]["1nn"]


def test_figure9a_ordering():
    res = figure9_contrast_vs_kstar(
        n_train=600, n_test=20, kstar_grid=(1, 10, 50), seed=1
    )
    at50 = {
        r["dataset"]: r["contrast"] for r in res.rows if r["k_star"] == 50
    }
    assert at50["deep"] > at50["gist"] > at50["dogfish"]


def test_figure10a_trend():
    res = figure10_g_vs_epsilon(
        n_train=800, n_test=20, epsilons=(0.01, 0.1, 1.0), seed=1
    )
    gs = res.column("g")
    assert gs[0] >= gs[1] >= gs[2]
    contrasts = res.column("contrast")
    assert contrasts[0] <= contrasts[-1]


def test_figure10b_g_decreases_with_contrast():
    res = figure10_g_vs_width(contrasts=(1.2, 2.0), widths=(1.0, 2.0, 4.0))
    low = [r["g"] for r in res.rows if r["contrast"] == 1.2]
    high = [r["g"] for r in res.rows if r["contrast"] == 2.0]
    assert all(h < lo for h, lo in zip(high, low))


def test_figure11_budget_trends():
    res = figure11_permutation_sizes(
        sizes=(100, 400), probe_grid=(5, 20, 80), seed=1
    )
    for row in res.rows:
        assert row["heuristic"] >= 1
        assert row["ground_truth"] <= row["hoeffding"]
    hoeff = res.column("hoeffding")
    benn = res.column("bennett")
    # Hoeffding grows with N, Bennett nearly flat (the paper's point)
    assert hoeff[-1] > hoeff[0]
    assert benn[-1] <= benn[0] * 1.5


def test_figure12_exact_grows_mc_flat():
    res = figure12_weighted_runtime(
        sizes=(12, 18), k_grid=(1, 2), fixed_k=2, fixed_n=14,
        mc_permutations=10, seed=1,
    )
    vary_n = [r for r in res.rows if r["sweep"] == "vary_n"]
    assert vary_n[-1]["exact_s"] > vary_n[0]["exact_s"]
    vary_k = [r for r in res.rows if r["sweep"] == "vary_k"]
    assert vary_k[-1]["exact_s"] >= vary_k[0]["exact_s"]


def test_figure13_exact_grows_with_sellers():
    res = figure13_multidata_runtime(
        seller_grid=(4, 8), k_grid=(1, 2), pooled_n=24,
        fixed_k=2, fixed_sellers=6, mc_permutations=10, seed=1,
    )
    vary_m = [r for r in res.rows if r["sweep"] == "vary_sellers"]
    assert vary_m[-1]["exact_s"] >= vary_m[0]["exact_s"] * 0.5  # noisy but present


def test_figure14_semantics():
    res = figure14_value_semantics(n_train=40, n_test=6, seed=1)
    lookup = {r["quantity"]: r["value"] for r in res.rows}
    assert lookup["top-valued same-label fraction"] > 0.6
    assert lookup["pearson(unweighted, weighted)"] > 0.5


def test_figure15_analyst_dominates():
    res = figure15_composite_game(
        contributor_grid=(15, 40), n_test=5, k=5, seed=1
    )
    for row in res.rows:
        assert row["analyst_share"] >= 0.5 - 1e-9
    means = res.column("contributor_mean")
    assert means[-1] < means[0]  # dilution with more contributors


def test_figure16_positive_correlation():
    res = figure16_surrogate_correlation(
        n_train=24, n_test=12, mc_permutations=25, seed=1
    )
    lookup = {r["metric"]: r["correlation"] for r in res.rows}
    assert lookup["pearson"] > 0


def test_weighted_fast_paths_smoke():
    """Tiny-scale smoke of the K>=2 fast-path experiment: correct
    columns, sane ratios, 1e-12 agreement."""
    from repro.experiments import weighted_fast_paths

    res = weighted_fast_paths(
        n_reference=40, n_piecewise=120, n_test=2, n_features=4, k=2, seed=0
    )
    assert res.experiment_id == "weighted-fast-paths"
    row = res.rows[0]
    assert row["max_err"] <= 1e-12
    assert row["piecewise_s"] > 0 and row["vectorized_s"] > 0
    assert row["n_reference"] == 40 and row["n_piecewise"] == 120


def test_tracing_overhead_smoke():
    """Tiny-scale smoke of the tracing-overhead experiment: correct
    columns, both timed loops ran, a bounded span tree per request."""
    from repro.experiments import tracing_overhead

    res = tracing_overhead(n_train=200, n_test=8, n_requests=2, repeat=2, seed=0)
    assert res.experiment_id == "tracing-overhead"
    row = res.rows[0]
    assert row["plain_s"] > 0 and row["traced_s"] > 0
    assert abs(row["trace_overhead_margin"] * row["overhead_ratio"] - 1.0) < 1e-9
    # request + >=1 chunk (rank + kernel) + merge, cache off throughout
    assert row["spans_per_request"] >= 5
    assert row["log_dropped"] == 0
