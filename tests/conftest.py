"""Shared fixtures: small deterministic datasets sized for brute force."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    assign_sellers,
    gaussian_blobs,
    iris_like,
    regression_dataset,
)


@pytest.fixture(scope="session")
def tiny_cls():
    """Classification dataset small enough for 2^N brute force."""
    return gaussian_blobs(
        n_train=9, n_test=3, n_classes=2, n_features=4, seed=101
    )


@pytest.fixture(scope="session")
def tiny_cls_multiclass():
    """Three-class variant (exercises non-binary label handling)."""
    return gaussian_blobs(
        n_train=9, n_test=3, n_classes=3, n_features=4, seed=102
    )


@pytest.fixture(scope="session")
def tiny_reg():
    """Regression dataset small enough for brute force."""
    return regression_dataset(n_train=8, n_test=2, n_features=3, seed=103)


@pytest.fixture(scope="session")
def tiny_grouped(tiny_cls):
    """Ownership map over the tiny classification dataset (4 sellers)."""
    return assign_sellers(tiny_cls, 4, seed=104)


@pytest.fixture(scope="session")
def medium_cls():
    """A mid-size dataset for approximation and retrieval tests."""
    return gaussian_blobs(
        n_train=400, n_test=10, n_classes=3, n_features=16, seed=105
    )


@pytest.fixture(scope="session")
def iris_data():
    """Iris-like dataset for the surrogate tests."""
    return iris_like(n_train=45, n_test=15, seed=106)


@pytest.fixture()
def rng():
    """A per-test generator."""
    return np.random.default_rng(2024)
