"""Tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.datasets import gaussian_blobs, iris_like
from repro.exceptions import NotFittedError, ParameterError
from repro.models import LogisticRegression, softmax


def test_softmax_rows_sum_to_one(rng):
    z = rng.standard_normal((6, 4)) * 10
    p = softmax(z)
    np.testing.assert_allclose(p.sum(axis=1), 1.0)
    assert np.all(p > 0)


def test_softmax_stability():
    z = np.array([[1000.0, 1001.0]])
    p = softmax(z)
    assert np.all(np.isfinite(p))
    assert p[0, 1] > p[0, 0]


def test_learns_separable_data():
    data = gaussian_blobs(
        n_train=200, n_test=100, separation=6.0, noise=0.7, seed=51
    )
    lr = LogisticRegression(learning_rate=0.5, max_iter=300, seed=0)
    lr.fit(data.x_train, data.y_train)
    assert lr.score(data.x_test, data.y_test) >= 0.95


def test_multiclass_iris_like():
    data = iris_like(n_train=120, n_test=30, seed=52)
    lr = LogisticRegression(learning_rate=0.2, max_iter=400, seed=0)
    lr.fit(data.x_train, data.y_train)
    assert lr.score(data.x_test, data.y_test) >= 0.8


def test_predict_proba_shape_and_simplex():
    data = gaussian_blobs(n_train=60, n_test=10, n_classes=3, seed=53)
    lr = LogisticRegression(seed=0).fit(data.x_train, data.y_train)
    proba = lr.predict_proba(data.x_test)
    assert proba.shape == (10, 3)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0)


def test_l2_shrinks_weights():
    data = gaussian_blobs(n_train=100, n_test=10, separation=5.0, seed=54)
    small = LogisticRegression(l2=1e-4, max_iter=200, seed=0).fit(
        data.x_train, data.y_train
    )
    big = LogisticRegression(l2=10.0, max_iter=200, seed=0).fit(
        data.x_train, data.y_train
    )
    assert np.linalg.norm(big.weights) < np.linalg.norm(small.weights)


def test_requires_fit():
    with pytest.raises(NotFittedError):
        LogisticRegression().predict(np.zeros((1, 2)))


def test_single_class_rejected():
    x = np.zeros((5, 2))
    y = np.zeros(5, dtype=int)
    with pytest.raises(ParameterError):
        LogisticRegression().fit(x, y)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"l2": -1.0},
        {"learning_rate": 0.0},
        {"max_iter": 0},
    ],
)
def test_parameter_validation(kwargs):
    with pytest.raises(ParameterError):
        LogisticRegression(**kwargs)


def test_deterministic_given_seed():
    data = gaussian_blobs(n_train=50, n_test=5, seed=55)
    a = LogisticRegression(seed=7).fit(data.x_train, data.y_train)
    b = LogisticRegression(seed=7).fit(data.x_train, data.y_train)
    np.testing.assert_array_equal(a.weights, b.weights)
