"""Tests for the retraining-based utility wrapper."""

import numpy as np
import pytest

from repro.datasets import gaussian_blobs
from repro.exceptions import ParameterError
from repro.models import LogisticRegression, RetrainUtility


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(
        n_train=30, n_test=20, separation=5.0, noise=0.8, seed=61
    )


def _factory():
    return LogisticRegression(learning_rate=0.3, max_iter=80, seed=0)


def test_empty_returns_fallback(data):
    utility = RetrainUtility(data, _factory, fallback=0.5)
    assert utility([]) == 0.5


def test_single_class_returns_fallback(data):
    utility = RetrainUtility(data, _factory, fallback=0.5)
    same = np.flatnonzero(np.asarray(data.y_train) == data.y_train[0])[:3]
    assert utility(same) == 0.5


def test_grand_coalition_accuracy(data):
    utility = RetrainUtility(data, _factory)
    acc = utility.grand_value()
    assert 0.8 <= acc <= 1.0


def test_counts_evaluations(data):
    utility = RetrainUtility(data, _factory)
    before = utility.n_evaluations
    utility(np.arange(10))
    utility(np.arange(12))
    assert utility.n_evaluations == before + 2


def test_value_bounds(data):
    utility = RetrainUtility(data, _factory, fallback=0.0)
    lo, hi = utility.value_bounds()
    assert lo <= 0.0 and hi >= 1.0


def test_min_classes_validation(data):
    with pytest.raises(ParameterError):
        RetrainUtility(data, _factory, min_classes=0)


def test_works_with_baseline_mc(data):
    """End-to-end: MC Shapley over a retrained model runs and sums to
    the total gain."""
    from repro.core import baseline_mc_shapley

    sub = data.subset(np.arange(12))
    utility = RetrainUtility(sub, _factory, fallback=0.5)
    result = baseline_mc_shapley(utility, n_permutations=5, seed=1)
    assert result.total() == pytest.approx(utility.total_gain(), abs=1e-9)
