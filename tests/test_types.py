"""Tests for the core datatypes."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.types import Dataset, GroupedDataset, ValuationResult


def _mk(n_train=5, n_test=2, d=3):
    rng = np.random.default_rng(0)
    return Dataset(
        x_train=rng.standard_normal((n_train, d)),
        y_train=rng.integers(0, 2, size=n_train),
        x_test=rng.standard_normal((n_test, d)),
        y_test=rng.integers(0, 2, size=n_test),
    )


def test_dataset_properties():
    data = _mk()
    assert data.n_train == 5
    assert data.n_test == 2
    assert data.n_features == 3


def test_dataset_shape_mismatch():
    rng = np.random.default_rng(1)
    with pytest.raises(DataValidationError):
        Dataset(
            x_train=rng.standard_normal((5, 3)),
            y_train=np.zeros(4, dtype=int),
            x_test=rng.standard_normal((2, 3)),
            y_test=np.zeros(2, dtype=int),
        )
    with pytest.raises(DataValidationError):
        Dataset(
            x_train=rng.standard_normal((5, 3)),
            y_train=np.zeros(5, dtype=int),
            x_test=rng.standard_normal((2, 4)),
            y_test=np.zeros(2, dtype=int),
        )


def test_dataset_rejects_nonfinite():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((4, 2))
    x[1, 0] = np.nan
    with pytest.raises(DataValidationError):
        Dataset(x, np.zeros(4, dtype=int), x[:1], np.zeros(1, dtype=int))


def test_dataset_rejects_empty():
    rng = np.random.default_rng(3)
    with pytest.raises(DataValidationError):
        Dataset(
            np.empty((0, 2)),
            np.empty(0, dtype=int),
            rng.standard_normal((1, 2)),
            np.zeros(1, dtype=int),
        )


def test_dataset_coerces_1d_features():
    data = Dataset(
        x_train=np.array([1.0, 2.0, 3.0]),
        y_train=np.array([0, 1, 0]),
        x_test=np.array([1.5]),
        y_test=np.array([0]),
    )
    assert data.n_features == 1


def test_grouped_dataset_validation():
    data = _mk()
    with pytest.raises(DataValidationError):
        GroupedDataset(dataset=data, groups=np.array([0, 1, 1, 3, 3]))
    with pytest.raises(DataValidationError):
        GroupedDataset(dataset=data, groups=np.array([0, 1]))
    grouped = GroupedDataset(dataset=data, groups=np.array([0, 1, 1, 2, 0]))
    assert grouped.n_sellers == 3
    np.testing.assert_array_equal(grouped.members(1), [1, 2])


def test_valuation_result_helpers():
    result = ValuationResult(
        values=np.array([0.1, 0.5, -0.2]), method="exact"
    )
    assert result.n == 3
    assert result.total() == pytest.approx(0.4)
    np.testing.assert_array_equal(result.ranking(), [1, 0, 2])
    np.testing.assert_array_equal(result.top(2), [1, 0])


def test_valuation_result_with_extra():
    result = ValuationResult(values=np.zeros(2), method="exact", extra={"a": 1})
    enriched = result.with_extra(b=2)
    assert enriched.extra == {"a": 1, "b": 2}
    assert result.extra == {"a": 1}


def test_valuation_result_rejects_2d():
    with pytest.raises(DataValidationError):
        ValuationResult(values=np.zeros((2, 2)), method="x")
