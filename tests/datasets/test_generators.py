"""Tests for the dataset generators and ownership helpers."""

import numpy as np
import pytest

from repro.datasets import (
    EMBEDDING_SPECS,
    assign_sellers,
    gaussian_blobs,
    inject_label_noise,
    iris_like,
    make_embedding_dataset,
    regression_dataset,
    train_test_split,
)
from repro.exceptions import DataValidationError, ParameterError


def test_blobs_shapes_and_determinism():
    a = gaussian_blobs(n_train=50, n_test=10, n_features=8, seed=1)
    b = gaussian_blobs(n_train=50, n_test=10, n_features=8, seed=1)
    assert a.x_train.shape == (50, 8)
    assert a.n_test == 10
    np.testing.assert_array_equal(a.x_train, b.x_train)
    np.testing.assert_array_equal(a.y_train, b.y_train)


def test_blobs_separation_controls_accuracy():
    from repro.knn import KNNClassifier

    easy = gaussian_blobs(n_train=200, n_test=100, separation=8.0, seed=2)
    hard = gaussian_blobs(n_train=200, n_test=100, separation=0.2, seed=2)
    clf_easy = KNNClassifier(k=3).fit(easy.x_train, easy.y_train)
    clf_hard = KNNClassifier(k=3).fit(hard.x_train, hard.y_train)
    assert clf_easy.score(easy.x_test, easy.y_test) > clf_hard.score(
        hard.x_test, hard.y_test
    )


def test_blobs_validation():
    with pytest.raises(ParameterError):
        gaussian_blobs(n_train=0, n_test=5)
    with pytest.raises(ParameterError):
        gaussian_blobs(n_train=5, n_test=5, n_classes=1)
    with pytest.raises(ParameterError):
        gaussian_blobs(n_train=5, n_test=5, noise=0.0)


def test_regression_labels_float():
    data = regression_dataset(n_train=30, n_test=5, seed=3)
    assert np.asarray(data.y_train).dtype == np.float64


def test_label_noise_flips_requested_fraction():
    data = gaussian_blobs(n_train=100, n_test=10, n_classes=3, seed=4)
    noisy, flipped = inject_label_noise(data, 0.2, seed=5)
    assert flipped.shape == (20,)
    changed = np.flatnonzero(
        np.asarray(noisy.y_train) != np.asarray(data.y_train)
    )
    np.testing.assert_array_equal(changed, flipped)
    # originals untouched elsewhere
    untouched = np.setdiff1d(np.arange(100), flipped)
    np.testing.assert_array_equal(
        np.asarray(noisy.y_train)[untouched],
        np.asarray(data.y_train)[untouched],
    )


def test_label_noise_validation():
    data = gaussian_blobs(n_train=10, n_test=2, seed=6)
    with pytest.raises(ParameterError):
        inject_label_noise(data, 1.5)


def test_assign_sellers_covers_everyone():
    data = gaussian_blobs(n_train=30, n_test=3, seed=7)
    grouped = assign_sellers(data, 7, seed=8)
    assert grouped.n_sellers == 7
    sizes = [grouped.members(m).size for m in range(7)]
    assert min(sizes) >= 1
    assert sum(sizes) == 30


def test_assign_sellers_validation():
    data = gaussian_blobs(n_train=5, n_test=2, seed=9)
    with pytest.raises(ParameterError):
        assign_sellers(data, 6)
    with pytest.raises(ParameterError):
        assign_sellers(data, 0)


def test_train_test_split_partition(rng):
    x = rng.standard_normal((40, 3))
    y = rng.integers(0, 2, size=40)
    data = train_test_split(x, y, test_fraction=0.25, seed=10)
    assert data.n_test == 10
    assert data.n_train == 30


def test_embedding_specs_instantiate():
    for name in EMBEDDING_SPECS:
        data = make_embedding_dataset(name, n_train=30, n_test=5, seed=11)
        assert data.n_train == 30
        assert data.n_features == EMBEDDING_SPECS[name].n_features
        assert data.name == name


def test_embedding_unknown_spec():
    with pytest.raises(ParameterError):
        make_embedding_dataset("cifar100", 10, 2)


def test_iris_like_structure():
    data = iris_like(n_train=90, n_test=30, seed=12)
    assert data.n_features == 4
    assert set(np.unique(data.y_train)) == {0, 1, 2}
    # class 0 is well separated: a 1NN classifier gets it right
    from repro.knn import KNNClassifier

    clf = KNNClassifier(k=1).fit(data.x_train, data.y_train)
    pred = clf.predict(data.x_test)
    mask = np.asarray(data.y_test) == 0
    assert np.mean(pred[mask] == 0) > 0.9


def test_dataset_subset_and_single_test():
    data = gaussian_blobs(n_train=20, n_test=4, seed=13)
    sub = data.subset(np.array([1, 3, 5]))
    assert sub.n_train == 3
    np.testing.assert_array_equal(sub.x_train, data.x_train[[1, 3, 5]])
    single = data.single_test(2)
    assert single.n_test == 1
    np.testing.assert_array_equal(single.x_test[0], data.x_test[2])
    with pytest.raises(DataValidationError):
        data.single_test(7)
