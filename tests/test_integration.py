"""Cross-module integration tests: full valuation pipelines."""

import numpy as np
import pytest

from repro import KNNShapleyValuator
from repro.core import exact_knn_shapley
from repro.datasets import (
    assign_sellers,
    gaussian_blobs,
    inject_label_noise,
)
from repro.market import Analyst, Buyer, Marketplace
from repro.metrics import pearson_correlation, top_k_overlap


def test_all_methods_agree_on_one_dataset():
    """exact / truncated / LSH / improved MC give consistent values.

    Moderate separation keeps neighbor labels mixed, so the values are
    non-degenerate and correlations are meaningful.
    """
    data = gaussian_blobs(
        n_train=300, n_test=5, n_features=16, separation=1.8, seed=71
    )
    valuator = KNNShapleyValuator(data, k=3)
    exact = valuator.exact()
    truncated = valuator.truncated(epsilon=0.05)
    lsh = valuator.lsh(epsilon=0.1, delta=0.1, seed=0)
    mc = valuator.monte_carlo(n_permutations=800, seed=0)

    assert np.max(np.abs(truncated.values - exact.values)) <= 0.05
    assert np.max(np.abs(lsh.values - exact.values)) <= 0.1
    assert pearson_correlation(truncated.values, exact.values) > 0.8
    assert np.max(np.abs(mc.values - exact.values)) < 0.05
    assert top_k_overlap(truncated.values, exact.values, 30) >= 0.5


def test_mislabeled_points_get_low_values():
    """The headline application: flipped labels sink to the bottom of
    the value ranking."""
    clean = gaussian_blobs(
        n_train=200, n_test=40, separation=4.0, noise=0.8, seed=72
    )
    noisy, flipped = inject_label_noise(clean, 0.15, seed=73)
    values = exact_knn_shapley(noisy, 5).values
    flipped_mean = values[flipped].mean()
    clean_idx = np.setdiff1d(np.arange(200), flipped)
    clean_mean = values[clean_idx].mean()
    assert flipped_mean < clean_mean
    # bottom decile is dominated by flips
    bottom = np.argsort(values)[:20]
    assert np.isin(bottom, flipped).mean() > 0.5


def test_value_ranking_supports_data_selection():
    """Removing the lowest-valued points should not hurt accuracy more
    than removing random points (usually it helps)."""
    from repro.knn import KNNClassifier

    clean = gaussian_blobs(
        n_train=150, n_test=60, separation=3.0, noise=1.0, seed=74
    )
    noisy, _ = inject_label_noise(clean, 0.2, seed=75)
    values = exact_knn_shapley(noisy, 3).values
    keep_best = np.argsort(-values)[:100]
    rng = np.random.default_rng(76)
    keep_rand = rng.choice(150, size=100, replace=False)

    def acc(keep):
        clf = KNNClassifier(k=3).fit(
            noisy.x_train[keep], np.asarray(noisy.y_train)[keep]
        )
        return clf.score(noisy.x_test, noisy.y_test)

    assert acc(keep_best) >= acc(keep_rand)


def test_marketplace_end_to_end_with_sellers_and_analyst():
    data = gaussian_blobs(n_train=40, n_test=10, separation=3.0, seed=77)
    grouped = assign_sellers(data, 8, seed=78)
    market = Marketplace(
        dataset=data, k=3, grouped=grouped, analyst=Analyst(name="lab")
    )
    report = market.settle(Buyer(budget=5000.0))
    assert report.ledger.payments.shape == (9,)  # 8 sellers + analyst
    assert report.ledger.payments.sum() == pytest.approx(5000.0)
    assert report.analyst_payment() > 0


def test_grouped_and_pointwise_totals_match():
    """Group rationality at both granularities: totals equal v(I)-v(∅)."""
    data = gaussian_blobs(n_train=30, n_test=5, seed=79)
    grouped = assign_sellers(data, 6, seed=80)
    valuator = KNNShapleyValuator(data, k=2)
    pointwise = valuator.exact()
    sellerwise = valuator.grouped(grouped)
    assert pointwise.total() == pytest.approx(sellerwise.total(), abs=1e-9)
    # and each seller's value relates to its members' point values only
    # through the game, but totals must agree exactly.


def test_streaming_test_points_accumulate():
    """Valuing test points one at a time and averaging equals the batch
    run — the streaming scenario from Section 3.2's motivation."""
    data = gaussian_blobs(n_train=80, n_test=6, seed=81)
    batch = exact_knn_shapley(data, 3).values
    acc = np.zeros(80)
    for j in range(6):
        acc += exact_knn_shapley(data.single_test(j), 3).values
    np.testing.assert_allclose(acc / 6, batch, atol=1e-12)
