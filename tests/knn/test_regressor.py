"""Tests for the KNN regressor."""

import numpy as np
import pytest

from repro.datasets import regression_dataset
from repro.exceptions import NotFittedError, ParameterError
from repro.knn import KNNRegressor


def test_1nn_memorizes():
    data = regression_dataset(n_train=25, n_test=5, seed=1)
    reg = KNNRegressor(k=1).fit(data.x_train, data.y_train)
    np.testing.assert_allclose(reg.predict(data.x_train), data.y_train)


def test_prediction_is_neighbor_average():
    x = np.array([[0.0], [1.0], [2.0], [100.0]])
    y = np.array([0.0, 1.0, 2.0, 50.0])
    reg = KNNRegressor(k=3).fit(x, y)
    assert reg.predict([[1.0]])[0] == pytest.approx(1.0)


def test_weighted_pulls_toward_nearest():
    x = np.array([[0.0], [1.0]])
    y = np.array([0.0, 10.0])
    uni = KNNRegressor(k=2).fit(x, y)
    inv = KNNRegressor(k=2, weights="inverse_distance").fit(x, y)
    q = [[0.1]]
    assert uni.predict(q)[0] == pytest.approx(5.0)
    assert inv.predict(q)[0] < 5.0


def test_score_is_negative_mse():
    data = regression_dataset(n_train=40, n_test=10, seed=2)
    reg = KNNRegressor(k=3).fit(data.x_train, data.y_train)
    assert reg.score(data.x_test, data.y_test) == pytest.approx(
        -reg.mse(data.x_test, data.y_test)
    )
    assert reg.mse(data.x_test, data.y_test) >= 0


def test_smooth_target_beats_mean_predictor():
    data = regression_dataset(n_train=300, n_test=50, noise=0.05, seed=3)
    reg = KNNRegressor(k=5).fit(data.x_train, data.y_train)
    mse = reg.mse(data.x_test, data.y_test)
    baseline = float(
        np.mean((np.mean(data.y_train) - np.asarray(data.y_test)) ** 2)
    )
    assert mse < baseline


def test_requires_fit():
    with pytest.raises(NotFittedError):
        KNNRegressor(k=2).predict(np.zeros((1, 2)))


def test_rejects_bad_k():
    with pytest.raises(ParameterError):
        KNNRegressor(k=-1)
