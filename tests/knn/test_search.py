"""Tests for brute-force nearest-neighbor search."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.knn import KNNSearchIndex, argsort_by_distance, top_k


def test_argsort_is_full_ascending(rng):
    data = rng.standard_normal((40, 6))
    queries = rng.standard_normal((5, 6))
    order, dist = argsort_by_distance(queries, data)
    assert order.shape == (5, 40)
    assert np.all(np.diff(dist, axis=1) >= -1e-12)
    # rows are permutations
    for row in order:
        assert sorted(row.tolist()) == list(range(40))


def test_top_k_matches_argsort(rng):
    data = rng.standard_normal((50, 4))
    queries = rng.standard_normal((3, 4))
    order, dist = argsort_by_distance(queries, data)
    idx, d = top_k(queries, data, 7)
    np.testing.assert_array_equal(idx, order[:, :7])
    np.testing.assert_allclose(d, dist[:, :7])


def test_top_k_caps_at_n(rng):
    data = rng.standard_normal((4, 3))
    queries = rng.standard_normal((2, 3))
    idx, d = top_k(queries, data, 10)
    assert idx.shape == (2, 4)


def test_tie_break_is_stable():
    data = np.zeros((5, 2))  # all identical -> all tie
    queries = np.ones((1, 2))
    idx, _ = top_k(queries, data, 3)
    np.testing.assert_array_equal(idx[0], [0, 1, 2])


def test_top_k_rejects_bad_k(rng):
    data = rng.standard_normal((4, 2))
    with pytest.raises(ParameterError):
        top_k(data, data, 0)


def test_index_interface(rng):
    data = rng.standard_normal((30, 5))
    queries = rng.standard_normal((4, 5))
    index = KNNSearchIndex(data)
    idx, dist = index.query(queries, 5)
    expected_idx, expected_dist = top_k(queries, data, 5)
    np.testing.assert_array_equal(idx, expected_idx)
    np.testing.assert_allclose(dist, expected_dist)
    assert index.n == 30
    assert index.metric == "euclidean"
    order, _ = index.query_all(queries)
    assert order.shape == (4, 30)


def test_index_rejects_empty():
    with pytest.raises(ParameterError):
        KNNSearchIndex(np.empty((0, 3)))
