"""Tests for brute-force nearest-neighbor search."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.knn import (
    KNNSearchIndex,
    argsort_by_distance,
    stable_argsort_rows,
    top_k,
)


def test_argsort_is_full_ascending(rng):
    data = rng.standard_normal((40, 6))
    queries = rng.standard_normal((5, 6))
    order, dist = argsort_by_distance(queries, data)
    assert order.shape == (5, 40)
    assert np.all(np.diff(dist, axis=1) >= -1e-12)
    # rows are permutations
    for row in order:
        assert sorted(row.tolist()) == list(range(40))


def test_top_k_matches_argsort(rng):
    data = rng.standard_normal((50, 4))
    queries = rng.standard_normal((3, 4))
    order, dist = argsort_by_distance(queries, data)
    idx, d = top_k(queries, data, 7)
    np.testing.assert_array_equal(idx, order[:, :7])
    np.testing.assert_allclose(d, dist[:, :7])


def test_top_k_caps_at_n(rng):
    data = rng.standard_normal((4, 3))
    queries = rng.standard_normal((2, 3))
    idx, d = top_k(queries, data, 10)
    assert idx.shape == (2, 4)


def test_tie_break_is_stable():
    data = np.zeros((5, 2))  # all identical -> all tie
    queries = np.ones((1, 2))
    idx, _ = top_k(queries, data, 3)
    np.testing.assert_array_equal(idx[0], [0, 1, 2])


def test_top_k_boundary_ties_are_deterministic():
    """Points tied at the k-th distance must be selected by index.

    Regression test: the argpartition fast path used to admit an
    arbitrary subset of the tied points, contradicting the module's
    determinism guarantee.
    """
    # 6 points at distance 1 from the origin query, 2 strictly closer
    data = np.array(
        [[1.0, 0], [0, 1], [-1, 0], [0, -1], [0.5, 0], [1, 0], [0, 1], [0, 0.5]]
    )
    queries = np.zeros((1, 2))
    order, _ = argsort_by_distance(queries, data)
    for k in range(1, data.shape[0] + 1):
        idx, dist = top_k(queries, data, k)
        np.testing.assert_array_equal(idx, order[:, :k])
        assert np.all(np.diff(dist[0]) >= 0)
    # tied block itself is listed in ascending index order
    idx6, _ = top_k(queries, data, 6)
    np.testing.assert_array_equal(idx6[0], [4, 7, 0, 1, 2, 3])


def test_top_k_matches_argsort_under_duplicates(rng):
    """Many duplicated rows: selection and order still match the
    stable full sort for every k."""
    base = rng.standard_normal((12, 3))
    data = np.vstack([base, base, base])  # every distance appears 3x
    queries = rng.standard_normal((4, 3))
    order, _ = argsort_by_distance(queries, data)
    for k in (1, 5, 17, 30):
        idx, _ = top_k(queries, data, k)
        np.testing.assert_array_equal(idx, order[:, :k])


def test_stable_argsort_rows_matches_numpy_stable(rng):
    dense = rng.standard_normal((6, 80))
    tied = rng.integers(0, 4, size=(6, 80)).astype(np.float64)
    flat = np.zeros((2, 40))
    single = rng.standard_normal((3, 1))
    for dist in (dense, tied, flat, single):
        np.testing.assert_array_equal(
            stable_argsort_rows(dist),
            np.argsort(dist, axis=1, kind="stable"),
        )


def test_top_k_rejects_bad_k(rng):
    data = rng.standard_normal((4, 2))
    with pytest.raises(ParameterError):
        top_k(data, data, 0)


def test_index_interface(rng):
    data = rng.standard_normal((30, 5))
    queries = rng.standard_normal((4, 5))
    index = KNNSearchIndex(data)
    idx, dist = index.query(queries, 5)
    expected_idx, expected_dist = top_k(queries, data, 5)
    np.testing.assert_array_equal(idx, expected_idx)
    np.testing.assert_allclose(dist, expected_dist)
    assert index.n == 30
    assert index.metric == "euclidean"
    order, _ = index.query_all(queries)
    assert order.shape == (4, 30)


def test_index_rejects_empty():
    with pytest.raises(ParameterError):
        KNNSearchIndex(np.empty((0, 3)))
