"""Tests for the KNN classifier."""

import numpy as np
import pytest

from repro.datasets import gaussian_blobs
from repro.exceptions import NotFittedError, ParameterError
from repro.knn import KNNClassifier


def test_perfect_on_separated_blobs():
    data = gaussian_blobs(
        n_train=100, n_test=40, separation=20.0, noise=0.5, seed=1
    )
    clf = KNNClassifier(k=3).fit(data.x_train, data.y_train)
    assert clf.score(data.x_test, data.y_test) == 1.0


def test_1nn_memorizes_training_set():
    data = gaussian_blobs(n_train=30, n_test=5, seed=2)
    clf = KNNClassifier(k=1).fit(data.x_train, data.y_train)
    pred = clf.predict(data.x_train)
    np.testing.assert_array_equal(pred, data.y_train)


def test_predict_proba_rows_sum_to_one():
    data = gaussian_blobs(n_train=50, n_test=10, n_classes=3, seed=3)
    clf = KNNClassifier(k=5).fit(data.x_train, data.y_train)
    proba = clf.predict_proba(data.x_test)
    assert proba.shape == (10, 3)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0)


def test_likelihood_of_is_knn_utility():
    """likelihood_of on the full set equals the per-test eq (5) utility."""
    from repro.utility import KNNClassificationUtility

    data = gaussian_blobs(n_train=40, n_test=6, seed=4)
    k = 3
    clf = KNNClassifier(k=k).fit(data.x_train, data.y_train)
    lik = clf.likelihood_of(data.x_test, data.y_test)
    utility = KNNClassificationUtility(data, k)
    members = np.arange(data.n_train)
    expected = [
        utility.per_test_value(members, j) for j in range(data.n_test)
    ]
    np.testing.assert_allclose(lik, expected)


def test_weighted_prediction_prefers_closer_label():
    x = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
    y = np.array([0, 0, 1, 1, 1])
    clf = KNNClassifier(k=5, weights="inverse_distance").fit(x, y)
    # query next to class 0: unweighted 5NN would vote 1 (3 vs 2)
    unweighted = KNNClassifier(k=5).fit(x, y)
    assert unweighted.predict([[0.05]])[0] == 1
    assert clf.predict([[0.05]])[0] == 0


def test_kneighbors_shape():
    data = gaussian_blobs(n_train=20, n_test=4, seed=5)
    clf = KNNClassifier(k=6).fit(data.x_train, data.y_train)
    idx, dist = clf.kneighbors(data.x_test)
    assert idx.shape == (4, 6)
    assert np.all(np.diff(dist, axis=1) >= -1e-12)


def test_requires_fit():
    clf = KNNClassifier(k=1)
    with pytest.raises(NotFittedError):
        clf.predict(np.zeros((1, 2)))


def test_rejects_bad_k():
    with pytest.raises(ParameterError):
        KNNClassifier(k=0)


def test_string_labels():
    x = np.array([[0.0], [1.0], [10.0]])
    y = np.array(["cat", "cat", "dog"])
    clf = KNNClassifier(k=1).fit(x, y)
    assert clf.predict([[0.2]])[0] == "cat"
    assert clf.predict([[9.5]])[0] == "dog"
