"""Tests for the distance kernels."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.knn import (
    cosine_distances,
    euclidean_distances,
    get_metric,
    manhattan_distances,
    squared_euclidean_distances,
)


@pytest.fixture()
def pair(rng):
    return rng.standard_normal((7, 5)), rng.standard_normal((11, 5))


def _naive(queries, data, fn):
    out = np.empty((queries.shape[0], data.shape[0]))
    for i, q in enumerate(queries):
        for j, d in enumerate(data):
            out[i, j] = fn(q, d)
    return out


def test_euclidean_matches_naive(pair):
    q, d = pair
    expected = _naive(q, d, lambda a, b: np.linalg.norm(a - b))
    np.testing.assert_allclose(euclidean_distances(q, d), expected, atol=1e-10)


def test_squared_euclidean_matches_naive(pair):
    q, d = pair
    expected = _naive(q, d, lambda a, b: np.sum((a - b) ** 2))
    np.testing.assert_allclose(
        squared_euclidean_distances(q, d), expected, atol=1e-9
    )


def test_manhattan_matches_naive(pair):
    q, d = pair
    expected = _naive(q, d, lambda a, b: np.sum(np.abs(a - b)))
    np.testing.assert_allclose(manhattan_distances(q, d), expected, atol=1e-10)


def test_cosine_matches_naive(pair):
    q, d = pair
    expected = _naive(
        q,
        d,
        lambda a, b: 1
        - np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b)),
    )
    np.testing.assert_allclose(cosine_distances(q, d), expected, atol=1e-10)


def test_self_distance_zero(rng):
    x = rng.standard_normal((5, 4))
    np.testing.assert_allclose(
        np.diag(euclidean_distances(x, x)), 0.0, atol=1e-7
    )


def test_no_negative_from_cancellation():
    x = np.array([[1e8, 1.0], [1e8, 1.0 + 1e-7]])
    sq = squared_euclidean_distances(x, x)
    assert np.all(sq >= 0.0)


def test_cosine_zero_vector():
    q = np.zeros((1, 3))
    d = np.array([[1.0, 0.0, 0.0]])
    assert cosine_distances(q, d)[0, 0] == pytest.approx(1.0)


def test_get_metric_unknown():
    with pytest.raises(ParameterError):
        get_metric("hamming")


def test_get_metric_known():
    assert get_metric("euclidean") is euclidean_distances
