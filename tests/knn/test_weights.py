"""Tests for the weight functions."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.knn import (
    gaussian_weights,
    get_weight_function,
    inverse_distance_weights,
    rank_weights,
    uniform_weights,
)


@pytest.mark.parametrize(
    "fn",
    [uniform_weights, inverse_distance_weights, rank_weights, gaussian_weights],
)
def test_normalized_and_nonnegative(fn, rng):
    d = np.sort(rng.uniform(0.1, 5.0, size=7))
    w = fn(d)
    assert w.shape == d.shape
    assert np.all(w >= 0)
    assert w.sum() == pytest.approx(1.0)


@pytest.mark.parametrize(
    "fn", [inverse_distance_weights, rank_weights, gaussian_weights]
)
def test_monotone_decreasing_with_distance(fn, rng):
    d = np.sort(rng.uniform(0.1, 5.0, size=6))
    w = fn(d)
    assert np.all(np.diff(w) <= 1e-12)


def test_uniform_is_flat():
    w = uniform_weights(np.array([0.1, 2.0, 9.0]))
    np.testing.assert_allclose(w, 1 / 3)


def test_empty_input():
    for fn in (uniform_weights, inverse_distance_weights, rank_weights):
        assert fn(np.array([])).shape == (0,)


def test_inverse_distance_exact_hits():
    w = inverse_distance_weights(np.array([0.0, 0.0, 1.0]))
    assert w[0] == pytest.approx(w[1])
    assert w[0] > w[2]


def test_gaussian_bandwidth_validation():
    with pytest.raises(ParameterError):
        gaussian_weights(np.array([1.0]), bandwidth=0.0)


def test_lookup():
    assert get_weight_function("uniform") is uniform_weights
    with pytest.raises(ParameterError):
        get_weight_function("nope")


def test_rank_only_capability_flags():
    from repro.knn.weights import is_rank_only

    assert is_rank_only("uniform") and is_rank_only("rank")
    assert not is_rank_only("inverse_distance")
    assert not is_rank_only("gaussian")
    assert is_rank_only(uniform_weights) and is_rank_only(rank_weights)

    def custom(d):
        return np.full(d.shape, 1.0 / max(1, d.size))

    assert not is_rank_only(custom)  # safe default: opt-in only
    custom.rank_only = True
    assert is_rank_only(custom)


@pytest.mark.parametrize(
    "name", ["uniform", "inverse_distance", "rank", "gaussian"]
)
def test_batched_weights_match_scalar(name, rng):
    from repro.knn.weights import apply_weights_batched

    fn = get_weight_function(name)
    d = np.sort(rng.uniform(0.0, 5.0, size=(8, 4)), axis=1)
    batched = apply_weights_batched(name, d)
    for r in range(d.shape[0]):
        np.testing.assert_array_equal(batched[r], fn(d[r]))
    # the empty-width corner mirrors the scalar empty-input behavior
    empty = apply_weights_batched(name, np.zeros((3, 0)))
    assert empty.shape == (3, 0)


def test_batched_weights_custom_callable_fallback(rng):
    from repro.knn.weights import apply_weights_batched

    def halving(distances):
        w = 0.5 ** np.arange(1, distances.size + 1)
        return w / w.sum() if w.size else w

    d = np.sort(rng.uniform(0.1, 2.0, size=(5, 3)), axis=1)
    batched = apply_weights_batched(halving, d)
    for r in range(d.shape[0]):
        np.testing.assert_array_equal(batched[r], halving(d[r]))


def test_weight_position_table():
    from repro.knn.weights import weight_position_table

    table = weight_position_table("rank", 3)
    assert table.shape == (3, 3)
    np.testing.assert_allclose(table[0], [1.0, 0.0, 0.0])
    np.testing.assert_allclose(table[1], [2 / 3, 1 / 3, 0.0])
    np.testing.assert_allclose(table[2], [3 / 6, 2 / 6, 1 / 6])
    # rows are the scalar function's output, zero-padded
    np.testing.assert_array_equal(
        weight_position_table("uniform", 2)[1], [0.5, 0.5]
    )
    with pytest.raises(ParameterError):
        weight_position_table("inverse_distance", 2)  # not rank-only
    with pytest.raises(ParameterError):
        weight_position_table("rank", 0)
