"""Tests for the weight functions."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.knn import (
    gaussian_weights,
    get_weight_function,
    inverse_distance_weights,
    rank_weights,
    uniform_weights,
)


@pytest.mark.parametrize(
    "fn",
    [uniform_weights, inverse_distance_weights, rank_weights, gaussian_weights],
)
def test_normalized_and_nonnegative(fn, rng):
    d = np.sort(rng.uniform(0.1, 5.0, size=7))
    w = fn(d)
    assert w.shape == d.shape
    assert np.all(w >= 0)
    assert w.sum() == pytest.approx(1.0)


@pytest.mark.parametrize(
    "fn", [inverse_distance_weights, rank_weights, gaussian_weights]
)
def test_monotone_decreasing_with_distance(fn, rng):
    d = np.sort(rng.uniform(0.1, 5.0, size=6))
    w = fn(d)
    assert np.all(np.diff(w) <= 1e-12)


def test_uniform_is_flat():
    w = uniform_weights(np.array([0.1, 2.0, 9.0]))
    np.testing.assert_allclose(w, 1 / 3)


def test_empty_input():
    for fn in (uniform_weights, inverse_distance_weights, rank_weights):
        assert fn(np.array([])).shape == (0,)


def test_inverse_distance_exact_hits():
    w = inverse_distance_weights(np.array([0.0, 0.0, 1.0]))
    assert w[0] == pytest.approx(w[1])
    assert w[0] > w[2]


def test_gaussian_bandwidth_validation():
    with pytest.raises(ParameterError):
        gaussian_weights(np.array([1.0]), bandwidth=0.0)


def test_lookup():
    assert get_weight_function("uniform") is uniform_weights
    with pytest.raises(ParameterError):
        get_weight_function("nope")
