"""Tests for the LSH-accelerated Shapley approximation (Theorem 4)."""

import numpy as np
import pytest

from repro.core import exact_knn_shapley
from repro.datasets import mnist_deep_like
from repro.exceptions import ParameterError
from repro.lsh import lsh_knn_shapley
from repro.metrics import max_abs_error, pearson_correlation, top_k_overlap


@pytest.fixture(scope="module")
def data():
    return mnist_deep_like(n_train=1200, n_test=8, seed=41)


def test_epsilon_guarantee(data):
    """On a high-contrast dataset the LSH values respect the epsilon
    target (probabilistic; fixed seed)."""
    k, epsilon = 1, 0.1
    exact = exact_knn_shapley(data, k)
    approx = lsh_knn_shapley(data, k, epsilon=epsilon, delta=0.1, seed=0)
    assert max_abs_error(approx.values, exact.values) <= epsilon


def test_high_correlation_with_exact(data):
    exact = exact_knn_shapley(data, 2)
    approx = lsh_knn_shapley(data, 2, epsilon=0.1, delta=0.1, seed=0)
    assert pearson_correlation(approx.values, exact.values) > 0.8


def test_top_points_recovered(data):
    """The most valuable points survive the approximation."""
    exact = exact_knn_shapley(data, 1)
    approx = lsh_knn_shapley(data, 1, epsilon=0.1, delta=0.1, seed=0)
    assert top_k_overlap(approx.values, exact.values, 10) >= 0.6


def test_result_metadata(data):
    res = lsh_knn_shapley(data, 1, epsilon=0.2, delta=0.1, seed=0)
    assert res.method == "lsh"
    assert res.extra["k_star"] == 5
    assert res.extra["build_seconds"] >= 0
    assert res.extra["query_seconds"] >= 0
    assert res.extra["mean_candidates"] > 0


def test_smaller_epsilon_retrieves_more(data):
    loose = lsh_knn_shapley(data, 1, epsilon=0.5, delta=0.1, seed=0)
    tight = lsh_knn_shapley(data, 1, epsilon=0.05, delta=0.1, seed=0)
    assert tight.extra["k_star"] > loose.extra["k_star"]
    loose_nonzero = int(np.sum(loose.values != 0))
    tight_nonzero = int(np.sum(tight.values != 0))
    assert tight_nonzero >= loose_nonzero


def test_rejects_bad_k(data):
    with pytest.raises(ParameterError):
        lsh_knn_shapley(data, 0)
