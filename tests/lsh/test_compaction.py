"""LSH tombstone compaction under adversarial churn.

Two levels: :meth:`LSHIndex.compact` must preserve query results
bit-for-bit (modulo the internal renumbering it returns), and a
monitored :class:`LSHNeighborBackend` under repeated in-band add/remove
cycles must keep answering exactly like a fresh-fit brute-force oracle
while compaction keeps the internal size (and with it every bucket)
bounded — with zero warnings.
"""

import warnings

import numpy as np
import pytest

from repro.engine import LSHNeighborBackend
from repro.knn.search import top_k
from repro.lsh import ContrastEstimate, LSHIndex, LSHParameters
from repro.monitor import MaintenanceScheduler, TombstoneDetector


def _full_recall_params(k: int = 3) -> LSHParameters:
    """One bucket per table: exhaustive re-ranking, brute-equivalent."""
    return LSHParameters(
        width=1e9,
        n_bits=1,
        n_tables=2,
        g=0.5,
        contrast=ContrastEstimate(d_mean=1.0, d_k=0.5, contrast=2.0, k=k),
    )


def test_index_compact_preserves_results_bitwise():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((300, 8))
    q = rng.standard_normal((20, 8))
    index = LSHIndex(n_tables=8, n_bits=3, width=2.0, seed=0).build(x)
    dead = np.arange(0, 120, 2)
    index.remove(dead)
    assert index.tombstone_ratio == pytest.approx(60 / 300)
    idx_before, dist_before, _ = index.query(q, 5)
    entries_before = index.bucket_stats()["n_entries"]

    remap = index.compact()

    assert index.n == 240
    assert index.n_alive == 240
    assert index.tombstone_ratio == 0.0
    assert np.all(remap[dead] == -1)
    # scrubbed ids vanished from every bucket: each point occupies one
    # bucket entry per table
    assert index.bucket_stats()["n_entries"] == entries_before - 60 * 8
    idx_after, dist_after, _ = index.query(q, 5)
    for j in range(len(idx_before)):
        # identical neighbors under the returned renumbering, and
        # bit-identical distances: compaction never rehashes
        assert np.array_equal(remap[idx_before[j]], idx_after[j])
        assert np.array_equal(dist_before[j], dist_after[j])


def test_index_compact_without_tombstones_is_identity():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((50, 4))
    index = LSHIndex(n_tables=3, n_bits=2, width=2.0, seed=0).build(x)
    remap = index.compact()
    assert np.array_equal(remap, np.arange(50))
    assert index.n == 50


def test_backend_compact_restores_id_identity():
    rng = np.random.default_rng(2)
    x = rng.standard_normal((120, 5))
    q = rng.standard_normal((8, 5))
    backend = LSHNeighborBackend(params=_full_recall_params(), seed=0).fit(x)
    backend.prepare(q, 4)
    backend.forget(np.arange(10, 40))
    idx_before, dist_before = backend.spot_query(q, 4)
    token_before = backend.cache_token()
    scrubbed = backend.compact()
    assert scrubbed == 30
    assert backend._ids is None  # identity mapping restored
    idx_after, dist_after = backend.spot_query(q, 4)
    for j in range(len(idx_before)):
        # external indices: unchanged by compaction, bit for bit
        assert np.array_equal(idx_before[j], idx_after[j])
        assert np.array_equal(dist_before[j], dist_after[j])
    # result-preserving maintenance keeps the cache token: cached
    # rankings stay valid
    assert backend.cache_token() == token_before
    assert backend.compact() == 0  # idempotent


def test_adversarial_churn_matches_brute_oracle_with_bounded_index():
    """Repeated in-band add/remove cycles, compacted by the scheduler.

    Every cycle stays inside the 25% drift band; the tombstone detector
    triggers compaction; queries must equal a fresh brute-force oracle
    on the live data at every step, the internal index must stay inside
    its band, and nothing may warn.
    """
    n, d, k = 200, 6, 4
    rng = np.random.default_rng(3)
    x = rng.standard_normal((n, d))
    q = rng.standard_normal((12, d))
    backend = LSHNeighborBackend(params=_full_recall_params(k), seed=0).fit(x)
    backend.prepare(q, k)
    sched = MaintenanceScheduler(
        backend=backend,
        interval=1000.0,
        detectors=[TombstoneDetector(backend, max_ratio=0.15)],
    )
    compactions = 0
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for cycle in range(12):
            # adversarial pattern: every cycle adds and removes the
            # same count, so the alive size never moves while internal
            # rows and tombstones ratchet up
            fresh_rows = rng.standard_normal((10, d)) + (cycle % 3)
            backend.partial_fit(fresh_rows)
            doomed = rng.choice(backend.n, size=10, replace=False)
            backend.forget(np.sort(doomed))
            assert backend.n == n

            idx, dist = backend.spot_query(q, k)
            oracle_idx, oracle_dist = top_k(q, backend.data, k)
            for j in range(q.shape[0]):
                assert np.array_equal(np.asarray(idx[j]), oracle_idx[j])
                np.testing.assert_allclose(
                    np.asarray(dist[j]), oracle_dist[j], rtol=0, atol=1e-9
                )

            events = sched.run_once()
            compactions += sum(1 for e in events if e.action == "compact")
            # the live index never outgrows its tuned band, so the
            # warned-refit escape hatch has nothing to do
            internal = backend._index.n
            assert internal <= (1 + backend.refit_drift) * backend.tuned_n
            # full-recall tables have one bucket per table: its size is
            # the internal row count, so bounded internal rows bound
            # every bucket
            assert backend._index.bucket_stats()["max_bucket"] <= internal
    assert compactions >= 2  # the detector actually drove compactions
    counters = backend.stats()["counters"]
    assert counters["warned_refits"] == 0
    assert counters["compactions"] == compactions


def test_per_index_counters_reset_on_rebuild():
    """The refit escape hatch must not leak stale per-index counters.

    After a rebuild the index has no tombstones and no in-place churn;
    counters claiming otherwise would drive monitored ratios negative.
    """
    rng = np.random.default_rng(4)
    x = rng.standard_normal((100, 4))
    backend = LSHNeighborBackend(seed=0, tune_with_queries=False).fit(x)
    backend.prepare(None, 3)
    backend.partial_fit(rng.standard_normal((5, 4)))
    backend.forget(np.arange(3))
    counters = backend.stats()["counters"]
    assert counters["inserts_in_place"] == 5
    assert counters["tombstones_in_place"] == 3
    with pytest.warns(RuntimeWarning):
        backend.partial_fit(rng.standard_normal((60, 4)))  # past the band
    backend.prepare(None, 3)  # the lazy rebuild
    counters = backend.stats()["counters"]
    assert counters["inserts_in_place"] == 0
    assert counters["tombstones_in_place"] == 0
    assert backend.tombstone_ratio == 0.0
    gauges = backend.stats()["gauges"]
    assert gauges["churn"] == 0
    assert gauges["internal_n"] == gauges["n_alive"] == 162
