"""Tests for relative-contrast estimation, g(C), and parameter tuning."""

import numpy as np
import pytest

from repro.datasets import dogfish_like, mnist_deep_like, mnist_gist_like
from repro.exceptions import ParameterError
from repro.lsh import (
    choose_n_bits,
    choose_n_tables,
    choose_width,
    estimate_relative_contrast,
    g_exponent,
    normalize_to_unit_dmean,
    tune_lsh,
)


def test_contrast_greater_than_one_for_clustered_data():
    data = mnist_deep_like(n_train=1500, n_test=30, seed=31)
    est = estimate_relative_contrast(data.x_train, data.x_test, k=5, seed=0)
    assert est.contrast > 1.0
    assert est.d_mean > est.d_k > 0


def test_contrast_decreases_with_k():
    data = mnist_deep_like(n_train=1500, n_test=30, seed=32)
    contrasts = [
        estimate_relative_contrast(
            data.x_train, data.x_test, k=k, seed=0
        ).contrast
        for k in (1, 10, 100)
    ]
    assert contrasts[0] >= contrasts[1] >= contrasts[2]


def test_dataset_contrast_ordering():
    """Figure 9's precondition: deep > gist > dog-fish at large K*."""
    k_star = 100
    contrasts = {}
    for name, maker in (
        ("deep", mnist_deep_like),
        ("gist", mnist_gist_like),
        ("dogfish", dogfish_like),
    ):
        data = maker(n_train=1500, n_test=30, seed=33)
        contrasts[name] = estimate_relative_contrast(
            data.x_train, data.x_test, k=k_star, seed=0
        ).contrast
    assert contrasts["deep"] > contrasts["gist"] > contrasts["dogfish"]


def test_g_monotone_decreasing_in_contrast():
    gs = [g_exponent(c, 2.0) for c in (1.05, 1.2, 1.5, 2.0, 3.0)]
    assert np.all(np.diff(gs) < 0)


def test_g_at_unit_contrast_is_one():
    assert g_exponent(1.0, 2.0) == pytest.approx(1.0)


def test_g_below_one_iff_contrast_above_one():
    assert g_exponent(1.3, 2.0) < 1.0
    assert g_exponent(0.8, 2.0) > 1.0


def test_normalize_to_unit_dmean():
    data = mnist_deep_like(n_train=800, n_test=30, seed=34)
    x_train, x_test, est = normalize_to_unit_dmean(
        data.x_train, data.x_test, k=3, seed=0
    )
    check = estimate_relative_contrast(x_train, x_test, k=3, seed=0)
    assert check.d_mean == pytest.approx(1.0, rel=0.05)
    assert est.contrast == pytest.approx(check.contrast, rel=0.05)


def test_choose_width_returns_minimizer():
    width, g = choose_width(1.4)
    for r in (0.5, 1.0, 2.0, 4.0):
        assert g <= g_exponent(1.4, r) + 1e-12
    assert width > 0


def test_choose_n_bits_scales_with_log_n():
    m1 = choose_n_bits(1000, 2.0)
    m2 = choose_n_bits(1000000, 2.0)
    assert m2 > m1
    assert choose_n_bits(1000, 2.0, alpha=0.5) <= m1


def test_choose_n_tables_monotonic():
    """More bits -> smaller per-table catch probability -> more tables;
    higher contrast -> fewer tables."""
    low = choose_n_tables(1.2, 2.0, n_bits=6, k_star=10, delta=0.1)
    high = choose_n_tables(1.2, 2.0, n_bits=10, k_star=10, delta=0.1)
    assert high >= low
    easier = choose_n_tables(2.0, 2.0, n_bits=6, k_star=10, delta=0.1)
    assert easier <= low


def test_tune_lsh_end_to_end():
    data = mnist_deep_like(n_train=1000, n_test=20, seed=35)
    _, _, est = normalize_to_unit_dmean(data.x_train, data.x_test, k=10, seed=0)
    params = tune_lsh(est, n=1000, k_star=10, delta=0.1, alpha=0.5)
    assert params.n_tables >= 1
    assert params.n_bits >= 1
    assert params.g == pytest.approx(g_exponent(est.contrast, params.width))


@pytest.mark.parametrize(
    "fn,args,kwargs",
    [
        (estimate_relative_contrast, (np.zeros((3, 2)), np.zeros((2, 2)), 5), {}),
        (g_exponent, (-1.0, 2.0), {}),
        (choose_n_bits, (1, 2.0), {}),
        (choose_n_tables, (1.2, 2.0, 4, 0, 0.1), {}),
        (choose_n_tables, (1.2, 2.0, 4, 5, 1.5), {}),
    ],
)
def test_validation(fn, args, kwargs):
    with pytest.raises(ParameterError):
        fn(*args, **kwargs)
