"""Tests for the multi-table LSH index."""

import numpy as np
import pytest

from repro.datasets import gaussian_blobs
from repro.exceptions import NotFittedError, ParameterError
from repro.knn import argsort_by_distance
from repro.lsh import LSHIndex, normalize_to_unit_dmean


@pytest.fixture(scope="module")
def built_index():
    data = gaussian_blobs(
        n_train=600, n_test=20, n_features=16, separation=4.0, seed=21
    )
    x_train, x_test, _ = normalize_to_unit_dmean(
        data.x_train, data.x_test, k=5, seed=0
    )
    index = LSHIndex(n_tables=25, n_bits=4, width=2.0, seed=0).build(x_train)
    return index, x_train, x_test


def test_query_returns_sorted_neighbors(built_index):
    index, x_train, x_test = built_index
    idx, dist, stats = index.query(x_test, 5)
    for j in range(len(idx)):
        assert np.all(np.diff(dist[j]) >= -1e-12)
        assert idx[j].shape == dist[j].shape
    assert stats.n_candidates.shape == (x_test.shape[0],)


def test_high_recall_with_enough_tables(built_index):
    index, x_train, x_test = built_index
    true_order, _ = argsort_by_distance(x_test, x_train)
    recall = index.recall_at_k(x_test, true_order, 5)
    assert recall >= 0.9


def test_recall_improves_with_tables():
    data = gaussian_blobs(
        n_train=500, n_test=20, n_features=16, separation=4.0, seed=22
    )
    x_train, x_test, _ = normalize_to_unit_dmean(
        data.x_train, data.x_test, k=5, seed=0
    )
    true_order, _ = argsort_by_distance(x_test, x_train)
    recalls = []
    for n_tables in (1, 5, 25):
        index = LSHIndex(
            n_tables=n_tables, n_bits=5, width=1.5, seed=0
        ).build(x_train)
        recalls.append(index.recall_at_k(x_test, true_order, 5))
    assert recalls[0] <= recalls[-1]
    assert recalls[-1] > 0.8


def test_candidates_are_valid_indices(built_index):
    index, x_train, x_test = built_index
    for cand in index.candidates(x_test[:3]):
        if cand.size:
            assert cand.min() >= 0 and cand.max() < index.n
            assert np.unique(cand).size == cand.size


def test_retrieved_distances_are_true_distances(built_index):
    index, x_train, x_test = built_index
    idx, dist, _ = index.query(x_test[:2], 3)
    for j in range(2):
        for pos, i in enumerate(idx[j]):
            true = float(np.linalg.norm(x_test[j] - x_train[i]))
            assert dist[j][pos] == pytest.approx(true, abs=1e-9)


def test_query_before_build():
    index = LSHIndex(n_tables=2, n_bits=2, width=1.0)
    with pytest.raises(NotFittedError):
        index.query(np.zeros((1, 4)), 1)


def test_build_empty_rejected():
    with pytest.raises(ParameterError):
        LSHIndex(n_tables=2, n_bits=2, width=1.0).build(np.empty((0, 3)))


def test_bad_parameters():
    with pytest.raises(ParameterError):
        LSHIndex(n_tables=0, n_bits=2, width=1.0)
    index = LSHIndex(n_tables=1, n_bits=1, width=1.0).build(np.zeros((3, 2)))
    with pytest.raises(ParameterError):
        index.query(np.zeros((1, 2)), 0)


def test_identical_points_always_collide():
    """A query equal to an indexed point always retrieves it."""
    rng = np.random.default_rng(5)
    x = rng.standard_normal((50, 8))
    index = LSHIndex(n_tables=4, n_bits=3, width=2.0, seed=1).build(x)
    idx, dist, _ = index.query(x[:5], 1)
    for j in range(5):
        assert idx[j][0] == j
        assert dist[j][0] == pytest.approx(0.0, abs=1e-9)
