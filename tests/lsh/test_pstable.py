"""Tests for the 2-stable hash family and collision probability."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.lsh import (
    GaussianHashFamily,
    collision_probability,
    collision_probability_numeric,
)


@pytest.mark.parametrize("c", [0.25, 0.5, 1.0, 2.0, 5.0])
@pytest.mark.parametrize("r", [0.5, 1.5, 4.0])
def test_closed_form_matches_integral(c, r):
    assert collision_probability(c, r) == pytest.approx(
        collision_probability_numeric(c, r), abs=1e-8
    )


def test_monotone_decreasing_in_distance():
    cs = np.linspace(0.1, 10.0, 50)
    ps = collision_probability(cs, 2.0)
    assert np.all(np.diff(ps) < 0)


def test_monotone_increasing_in_width():
    rs = np.linspace(0.5, 10.0, 30)
    ps = [collision_probability(1.0, r) for r in rs]
    assert np.all(np.diff(ps) > 0)


def test_probability_range():
    ps = collision_probability(np.array([0.01, 1.0, 100.0]), 1.0)
    assert np.all(ps >= 0) and np.all(ps <= 1)


def test_empirical_collision_rate(rng):
    """Monte Carlo check of f_h: the collision probability is over the
    *hash draw*, so hash one fixed pair at distance c with thousands of
    independent hash functions and compare the collision frequency to
    the closed form."""
    d, m, r, c = 16, 6000, 2.0, 1.3
    x = rng.standard_normal((1, d))
    direction = rng.standard_normal(d)
    direction *= c / np.linalg.norm(direction)
    y = x + direction  # one pair at distance exactly c
    family = GaussianHashFamily(d, n_bits=m, width=r, seed=rng)
    hx = family.hash_values(x)[0]
    hy = family.hash_values(y)[0]
    rate = float(np.mean(hx == hy))
    assert rate == pytest.approx(collision_probability(c, r), abs=0.03)


def test_hash_values_shape(rng):
    family = GaussianHashFamily(8, n_bits=4, width=1.0, seed=0)
    codes = family.hash_values(rng.standard_normal((10, 8)))
    assert codes.shape == (10, 4)
    assert codes.dtype == np.int64


def test_deterministic_given_seed(rng):
    x = rng.standard_normal((5, 6))
    a = GaussianHashFamily(6, 3, 1.0, seed=42).hash_values(x)
    b = GaussianHashFamily(6, 3, 1.0, seed=42).hash_values(x)
    np.testing.assert_array_equal(a, b)


def test_bucket_keys_unique_per_code(rng):
    family = GaussianHashFamily(4, 2, 1.0, seed=1)
    x = rng.standard_normal((20, 4))
    keys = family.bucket_keys(x)
    codes = family.hash_values(x)
    for i in range(20):
        for j in range(20):
            same_key = keys[i] == keys[j]
            same_code = bool(np.all(codes[i] == codes[j]))
            assert same_key == same_code


def test_dimension_mismatch(rng):
    family = GaussianHashFamily(4, 2, 1.0, seed=1)
    with pytest.raises(ParameterError):
        family.hash_values(rng.standard_normal((3, 5)))


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_dims": 0, "n_bits": 1, "width": 1.0},
        {"n_dims": 2, "n_bits": 0, "width": 1.0},
        {"n_dims": 2, "n_bits": 1, "width": 0.0},
    ],
)
def test_family_validation(kwargs):
    with pytest.raises(ParameterError):
        GaussianHashFamily(**kwargs)


def test_collision_probability_validation():
    with pytest.raises(ParameterError):
        collision_probability(0.0, 1.0)
    with pytest.raises(ParameterError):
        collision_probability(1.0, -1.0)
