"""Property-based tests (hypothesis) on the core invariants.

Each property mirrors a theorem or axiom from the paper:

* exact == brute force on arbitrary small instances (Theorems 1, 6);
* the Shapley axioms: group rationality, symmetry, null player;
* the Appendix C bound |s_alpha_i| <= min(1/i, 1/K);
* truncation error bound (Theorem 2);
* heap == sort (Algorithm 2's data structure).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    exact_knn_regression_shapley,
    exact_knn_shapley,
    shapley_by_subsets,
    truncated_knn_shapley,
    truncation_rank,
)
from repro.core.heap import KNearestHeap
from repro.metrics import max_abs_error
from repro.types import Dataset
from repro.utility import KNNClassificationUtility, KNNRegressionUtility


def _cls_dataset(draw, max_n=9):
    n = draw(st.integers(2, max_n))
    d = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    x_train = rng.standard_normal((n, d))
    y_train = rng.integers(0, draw(st.integers(2, 3)), size=n)
    x_test = rng.standard_normal((2, d))
    y_test = rng.integers(0, 2, size=2)
    return Dataset(x_train, y_train, x_test, y_test)


@st.composite
def cls_datasets(draw):
    return _cls_dataset(draw)


@st.composite
def reg_datasets(draw):
    n = draw(st.integers(2, 8))
    d = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    x_train = rng.standard_normal((n, d))
    y_train = rng.uniform(-1, 1, size=n)
    x_test = rng.standard_normal((2, d))
    y_test = rng.uniform(-1, 1, size=2)
    return Dataset(x_train, y_train, x_test, y_test)


@settings(max_examples=25, deadline=None)
@given(data=cls_datasets(), k=st.integers(1, 4))
def test_exact_equals_brute_force(data, k):
    utility = KNNClassificationUtility(data, k)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_shapley(data, k)
    assert max_abs_error(fast.values, oracle.values) < 1e-10


@settings(max_examples=20, deadline=None)
@given(data=reg_datasets(), k=st.integers(1, 3))
def test_regression_equals_brute_force(data, k):
    utility = KNNRegressionUtility(data, k)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_regression_shapley(data, k)
    assert max_abs_error(fast.values, oracle.values) < 1e-8


@settings(max_examples=25, deadline=None)
@given(data=cls_datasets(), k=st.integers(1, 4))
def test_group_rationality(data, k):
    utility = KNNClassificationUtility(data, k)
    result = exact_knn_shapley(data, k)
    assert result.total() == pytest.approx(utility.total_gain(), abs=1e-10)


@settings(max_examples=25, deadline=None)
@given(data=cls_datasets(), k=st.integers(1, 3))
def test_appendix_c_bound(data, k):
    result = exact_knn_shapley(data, k)
    per_test = result.extra["per_test"]
    utility = KNNClassificationUtility(data, k)
    n = data.n_train
    ranks = np.arange(1, n + 1)
    bound = np.minimum(1.0 / ranks, 1.0 / k)
    for j in range(data.n_test):
        s_rank = per_test[j][utility.order[j]]
        assert np.all(np.abs(s_rank) <= bound + 1e-12)


@settings(max_examples=20, deadline=None)
@given(
    data=cls_datasets(),
    k=st.integers(1, 3),
    epsilon=st.floats(0.05, 0.9),
)
def test_truncation_error_bound(data, k, epsilon):
    exact = exact_knn_shapley(data, k)
    approx = truncated_knn_shapley(data, k, epsilon)
    assert max_abs_error(approx.values, exact.values) <= epsilon + 1e-12


@settings(max_examples=30, deadline=None)
@given(
    dists=st.lists(
        st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=60
    ),
    k=st.integers(1, 8),
)
def test_heap_matches_argsort(dists, k):
    heap = KNearestHeap(k)
    for i, d in enumerate(dists):
        heap.push(float(d), i)
    kept = sorted(heap.payloads())
    expected = sorted(
        np.argsort(np.asarray(dists), kind="stable")[:k].tolist()
    )
    assert kept == expected


@settings(max_examples=15, deadline=None)
@given(data=cls_datasets(), k=st.integers(1, 3))
def test_symmetry_of_duplicates(data, k):
    """Two identical training points (same x, same y) get equal values."""
    x = np.vstack([data.x_train, data.x_train[:1]])
    y = np.append(data.y_train, data.y_train[0])
    dup = Dataset(x, y, data.x_test, data.y_test)
    utility = KNNClassificationUtility(dup, k)
    oracle = shapley_by_subsets(utility)
    assert oracle.values[0] == pytest.approx(
        oracle.values[-1], abs=1e-10
    )


@settings(max_examples=10, deadline=None)
@given(data=cls_datasets(), k=st.integers(1, 3))
def test_truncation_rank_consistency(data, k):
    """epsilon >= 1 truncates to K; tiny epsilon keeps everything."""
    assert truncation_rank(k, 1.0) == k
    big = truncated_knn_shapley(data, k, 1e-9)
    exact = exact_knn_shapley(data, k)
    assert max_abs_error(big.values, exact.values) < 1e-10
