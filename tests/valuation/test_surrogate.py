"""Tests for the KNN-surrogate valuation (Section 7)."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.models import LogisticRegression
from repro.valuation import calibrate_k, surrogate_values


def test_calibration_picks_closest_accuracy(iris_data):
    lr = LogisticRegression(learning_rate=0.2, max_iter=300, seed=0)
    lr.fit(iris_data.x_train, iris_data.y_train)
    target = lr.score(iris_data.x_test, iris_data.y_test)
    cal = calibrate_k(iris_data, target)
    for k, acc in cal.candidates:
        assert cal.accuracy_gap <= abs(acc - target) + 1e-12


def test_calibration_skips_infeasible_k(iris_data):
    cal = calibrate_k(iris_data, 0.9, k_grid=(1, 10**6))
    assert cal.k == 1


def test_calibration_validation(iris_data):
    with pytest.raises(ParameterError):
        calibrate_k(iris_data, 1.5)
    with pytest.raises(ParameterError):
        calibrate_k(iris_data, 0.9, k_grid=(0, -1))


def test_surrogate_values_end_to_end(iris_data):
    result, cal = surrogate_values(iris_data, target_accuracy=0.9)
    assert result.n == iris_data.n_train
    assert result.extra["surrogate"] is True
    assert result.extra["calibrated_k"] == cal.k


def test_surrogate_correlates_with_lr_values(iris_data):
    """The Figure 16 claim at test scale: positive correlation between
    KNN surrogate values and MC logistic-regression values."""
    from repro.core import baseline_mc_shapley
    from repro.metrics import pearson_correlation
    from repro.models import RetrainUtility

    sub = iris_data.subset(np.arange(18))
    result, _ = surrogate_values(sub, target_accuracy=0.9, k_grid=(1, 3, 5))

    def factory():
        return LogisticRegression(learning_rate=0.2, max_iter=60, seed=0)

    utility = RetrainUtility(sub, factory, fallback=1 / 3)
    lr_vals = baseline_mc_shapley(utility, n_permutations=40, seed=0)
    corr = pearson_correlation(result.values, lr_vals.values)
    assert corr > 0.2
