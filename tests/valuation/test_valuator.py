"""Tests for the KNNShapleyValuator facade."""

import numpy as np
import pytest

from repro import KNNShapleyValuator
from repro.core import (
    exact_knn_regression_shapley,
    exact_knn_shapley,
    truncated_knn_shapley,
)
from repro.exceptions import ParameterError


def test_exact_classification(tiny_cls):
    valuator = KNNShapleyValuator(tiny_cls, k=2)
    result = valuator.exact()
    expected = exact_knn_shapley(tiny_cls, 2)
    np.testing.assert_allclose(result.values, expected.values)


def test_exact_regression(tiny_reg):
    valuator = KNNShapleyValuator(tiny_reg, k=2, task="regression")
    result = valuator.exact()
    expected = exact_knn_regression_shapley(tiny_reg, 2)
    np.testing.assert_allclose(result.values, expected.values)


def test_truncated(medium_cls):
    valuator = KNNShapleyValuator(medium_cls, k=2)
    result = valuator.truncated(epsilon=0.1)
    expected = truncated_knn_shapley(medium_cls, 2, 0.1)
    np.testing.assert_allclose(result.values, expected.values)


def test_truncated_rejected_for_regression(tiny_reg):
    valuator = KNNShapleyValuator(tiny_reg, k=2, task="regression")
    with pytest.raises(ParameterError):
        valuator.truncated()
    with pytest.raises(ParameterError):
        valuator.lsh()


def test_monte_carlo_improved(tiny_cls):
    valuator = KNNShapleyValuator(tiny_cls, k=2)
    exact = valuator.exact()
    mc = valuator.monte_carlo(n_permutations=4000, seed=0)
    assert np.max(np.abs(mc.values - exact.values)) < 0.03


def test_monte_carlo_baseline(tiny_cls):
    valuator = KNNShapleyValuator(tiny_cls, k=2)
    mc = valuator.monte_carlo(improved=False, n_permutations=30, seed=0)
    assert mc.method == "mc-baseline"


def test_monte_carlo_grouped(tiny_cls, tiny_grouped):
    valuator = KNNShapleyValuator(tiny_cls, k=2)
    mc = valuator.monte_carlo(
        grouped=tiny_grouped, n_permutations=100, seed=0
    )
    assert mc.n == tiny_grouped.n_sellers


def test_weighted(tiny_cls):
    valuator = KNNShapleyValuator(tiny_cls, k=2)
    result = valuator.weighted()
    assert result.method == "exact-weighted"
    assert result.n == tiny_cls.n_train


def test_grouped(tiny_cls, tiny_grouped):
    valuator = KNNShapleyValuator(tiny_cls, k=2)
    result = valuator.grouped(tiny_grouped)
    assert result.n == tiny_grouped.n_sellers


def test_composite(tiny_cls):
    valuator = KNNShapleyValuator(tiny_cls, k=2)
    result = valuator.composite()
    assert result.n == tiny_cls.n_train + 1


def test_composite_grouped(tiny_cls, tiny_grouped):
    valuator = KNNShapleyValuator(tiny_cls, k=2)
    result = valuator.composite(grouped=tiny_grouped)
    assert result.n == tiny_grouped.n_sellers + 1


def test_validation(tiny_cls):
    with pytest.raises(ParameterError):
        KNNShapleyValuator(tiny_cls, k=0)
    with pytest.raises(ParameterError):
        KNNShapleyValuator(tiny_cls, k=1, task="clustering")


def test_result_helpers(tiny_cls):
    result = KNNShapleyValuator(tiny_cls, k=1).exact()
    top3 = result.top(3)
    assert top3.shape == (3,)
    ranking = result.ranking()
    assert ranking.shape == (tiny_cls.n_train,)
    assert set(top3.tolist()) <= set(ranking[:3].tolist())


def test_weighted_falls_back_for_non_ranking_backend(tiny_cls):
    """An LSH-configured valuator still serves weighted(): Theorem 7
    needs full rankings, so it falls back to the single-shot path
    (mode='auto' there takes the kernel fast paths, within 1e-12 of
    the reference; mode='reference' reproduces it bit-for-bit)."""
    from repro.core import exact_weighted_knn_shapley

    valuator = KNNShapleyValuator(tiny_cls, k=2, backend="lsh")
    result = valuator.weighted()
    assert result.method == "exact-weighted"
    assert result.extra["weighted_path"] == "vectorized"
    reference = exact_weighted_knn_shapley(tiny_cls, 2)
    np.testing.assert_allclose(
        result.values, reference.values, rtol=0, atol=1e-12
    )
    bitwise = valuator.weighted(mode="reference")
    np.testing.assert_array_equal(bitwise.values, reference.values)
