"""Tests for value-based data curation."""

import numpy as np
import pytest

from repro.core import exact_knn_shapley
from repro.datasets import gaussian_blobs, inject_label_noise
from repro.exceptions import ParameterError
from repro.types import ValuationResult
from repro.valuation import (
    curation_curve,
    drop_harmful,
    select_by_value,
)


def _result(values):
    return ValuationResult(values=np.asarray(values, float), method="t")


def test_select_by_value_top_fraction():
    res = _result([0.1, 0.5, 0.3, 0.0])
    np.testing.assert_array_equal(select_by_value(res, 0.5), [1, 2])
    np.testing.assert_array_equal(select_by_value(res, 1.0), [0, 1, 2, 3])


def test_select_by_value_always_keeps_one():
    res = _result([0.1, 0.5])
    assert select_by_value(res, 0.01).size == 1


def test_select_by_value_validation():
    res = _result([0.1])
    with pytest.raises(ParameterError):
        select_by_value(res, 0.0)
    with pytest.raises(ParameterError):
        select_by_value(res, 1.5)


def test_drop_harmful_default_threshold():
    res = _result([0.2, -0.1, 0.0, 0.3])
    np.testing.assert_array_equal(drop_harmful(res), [0, 3])


def test_drop_harmful_never_empties():
    res = _result([-0.2, -0.1])
    np.testing.assert_array_equal(drop_harmful(res), [0, 1])


def test_drop_harmful_custom_threshold():
    res = _result([0.2, 0.05, 0.3])
    np.testing.assert_array_equal(drop_harmful(res, threshold=0.1), [0, 2])


@pytest.fixture(scope="module")
def noisy_setup():
    clean = gaussian_blobs(
        n_train=200, n_test=60, separation=4.0, noise=0.9, seed=81
    )
    noisy, flipped = inject_label_noise(clean, 0.2, seed=82)
    values = exact_knn_shapley(noisy, 3)
    return noisy, flipped, values


def test_curation_curve_improves_on_noisy_data(noisy_setup):
    noisy, _, values = noisy_setup
    curve = curation_curve(
        noisy, values, fractions=(0.0, 0.1, 0.2), k=3
    )
    assert len(curve) == 3
    assert curve[0].n_kept == noisy.n_train
    # removing the lowest-valued (mostly flipped) points helps
    assert curve[-1].score >= curve[0].score
    # bookkeeping
    assert curve[1].n_kept == noisy.n_train - round(0.1 * noisy.n_train)


def test_curation_curve_custom_scorer(noisy_setup):
    noisy, _, values = noisy_setup
    curve = curation_curve(
        noisy,
        values,
        fractions=(0.0, 0.5),
        scorer=lambda d: float(d.n_train),
    )
    assert curve[0].score == noisy.n_train
    assert curve[1].score == noisy.n_train - round(0.5 * noisy.n_train)


def test_curation_curve_validation(noisy_setup):
    noisy, _, values = noisy_setup
    with pytest.raises(ParameterError):
        curation_curve(noisy, _result([1.0, 2.0]))
    with pytest.raises(ParameterError):
        curation_curve(noisy, values, fractions=(1.0,))


def test_drop_harmful_removes_mostly_flipped(noisy_setup):
    noisy, flipped, values = noisy_setup
    kept = drop_harmful(values)
    dropped = np.setdiff1d(np.arange(noisy.n_train), kept)
    if dropped.size:
        frac_flipped = np.isin(dropped, flipped).mean()
        assert frac_flipped > 0.5
