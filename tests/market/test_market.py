"""Tests for the marketplace layer: agents, games, revenue, settlement."""

import numpy as np
import pytest

from repro.core import composite_knn_shapley, exact_knn_shapley
from repro.exceptions import DataValidationError, ParameterError
from repro.market import (
    AffineRevenueModel,
    Analyst,
    Buyer,
    CompositeGame,
    DataOnlyGame,
    Marketplace,
    Seller,
    allocate_payments,
)
from repro.types import ValuationResult


# ----------------------------------------------------------------------
# agents
# ----------------------------------------------------------------------
def test_seller_validation():
    with pytest.raises(DataValidationError):
        Seller(seller_id=0, point_indices=np.array([]))
    s = Seller(seller_id=3, point_indices=np.array([1, 2]))
    assert s.n_points == 2
    assert s.name == "seller-3"


def test_buyer_validation():
    with pytest.raises(DataValidationError):
        Buyer(budget=-1.0)
    assert Buyer(budget=10.0).name == "buyer"


# ----------------------------------------------------------------------
# games
# ----------------------------------------------------------------------
def test_data_only_game_solves_exact(tiny_cls):
    game = DataOnlyGame(dataset=tiny_cls, k=2)
    result = game.solve()
    expected = exact_knn_shapley(tiny_cls, 2)
    np.testing.assert_allclose(result.values, expected.values)
    assert game.n_players == tiny_cls.n_train
    assert len(game.sellers()) == tiny_cls.n_train


def test_data_only_game_grouped(tiny_cls, tiny_grouped):
    game = DataOnlyGame(dataset=tiny_cls, k=2, grouped=tiny_grouped)
    result = game.solve()
    assert result.n == tiny_grouped.n_sellers
    assert game.n_players == tiny_grouped.n_sellers


def test_data_only_game_regression(tiny_reg):
    game = DataOnlyGame(dataset=tiny_reg, k=2, task="regression")
    result = game.solve()
    assert result.method == "exact-regression"


def test_composite_game_matches_theorem(tiny_cls):
    game = CompositeGame(dataset=tiny_cls, k=2)
    result = game.solve()
    expected = composite_knn_shapley(tiny_cls, 2)
    np.testing.assert_allclose(result.values, expected.values)
    assert game.n_players == tiny_cls.n_train + 1


def test_composite_analyst_share(tiny_cls):
    game = CompositeGame(dataset=tiny_cls, k=2)
    share = game.analyst_share()
    assert share >= 0.5 - 1e-9


def test_game_task_validation(tiny_cls):
    with pytest.raises(ParameterError):
        DataOnlyGame(dataset=tiny_cls, k=2, task="clustering")


# ----------------------------------------------------------------------
# revenue
# ----------------------------------------------------------------------
def test_affine_model_additivity():
    model = AffineRevenueModel(a=100.0, b=10.0)
    result = ValuationResult(values=np.array([0.2, 0.3]), method="exact")
    money = model.value_to_money(result)
    np.testing.assert_allclose(money, [25.0, 35.0])
    assert model.total_revenue(0.5) == pytest.approx(60.0)
    assert money.sum() == pytest.approx(model.total_revenue(0.5))


def test_affine_model_validation():
    with pytest.raises(ParameterError):
        AffineRevenueModel(a=0.0)


def test_allocate_payments_proportional():
    result = ValuationResult(values=np.array([3.0, 1.0]), method="m")
    ledger = allocate_payments(result, budget=100.0)
    np.testing.assert_allclose(ledger.payments, [75.0, 25.0])
    assert ledger.payments.sum() == pytest.approx(100.0)


def test_allocate_payments_clips_negative():
    result = ValuationResult(values=np.array([2.0, -1.0]), method="m")
    ledger = allocate_payments(result, budget=100.0)
    np.testing.assert_allclose(ledger.payments, [100.0, 0.0])
    np.testing.assert_allclose(ledger.raw, [2.0, -1.0])


def test_allocate_payments_unclipped_nets_to_budget():
    result = ValuationResult(values=np.array([2.0, -1.0]), method="m")
    ledger = allocate_payments(result, budget=10.0, clip_negative=False)
    assert ledger.payments.sum() == pytest.approx(10.0)
    assert ledger.payments[1] < 0


def test_allocate_payments_degenerate_even_split():
    result = ValuationResult(values=np.array([-1.0, -2.0]), method="m")
    ledger = allocate_payments(result, budget=10.0)
    np.testing.assert_allclose(ledger.payments, [5.0, 5.0])


# ----------------------------------------------------------------------
# marketplace
# ----------------------------------------------------------------------
def test_marketplace_settlement_distributes_budget(tiny_cls):
    market = Marketplace(dataset=tiny_cls, k=2)
    report = market.settle(Buyer(budget=1000.0))
    assert report.ledger.payments.sum() == pytest.approx(1000.0)
    assert not report.includes_analyst
    assert len(report.sellers) == tiny_cls.n_train
    assert report.grand_utility == pytest.approx(
        exact_knn_shapley(tiny_cls, 2).total(), abs=1e-9
    )


def test_marketplace_with_analyst(tiny_cls):
    market = Marketplace(dataset=tiny_cls, k=2, analyst=Analyst())
    report = market.settle(Buyer(budget=100.0))
    assert report.includes_analyst
    # analyst takes at least half of the positive mass
    assert report.analyst_payment() >= 100.0 / 2 - 1e-6


def test_marketplace_flags_mislabeled():
    """Flipped labels land in the low-value flag set more often than
    chance (needs a learnable dataset, or 'low value' carries no signal)."""
    from repro.datasets import gaussian_blobs, inject_label_noise

    clean = gaussian_blobs(
        n_train=300, n_test=40, separation=4.0, noise=0.9, seed=91
    )
    noisy, flipped = inject_label_noise(clean, 0.1, seed=3)
    market = Marketplace(dataset=noisy, k=3)
    flagged = market.flag_low_value_sellers(quantile=0.1)
    hit_rate = np.isin(flagged, flipped).mean()
    base_rate = len(flipped) / noisy.n_train
    assert hit_rate > 2 * base_rate


def test_marketplace_requires_positive_budget(tiny_cls):
    market = Marketplace(dataset=tiny_cls, k=1)
    with pytest.raises(ParameterError):
        market.settle(Buyer(budget=0.0))
