"""Tests for the weighted kernel's K >= 2 fast-path stack.

Layer 1 — the O(N·K^2) piecewise counting path (rank-only weight
functions): bit-match against the reference recursion, agreement with
the exhaustive 2^N oracle, and the Appendix-F group algebra itself.
Layer 2 — the batched configuration engine: bit-match against the
reference for every built-in weight function and both tasks, and the
batched utility oracle it drives.  Plus the mode/path selection logic
and its engine surfacing.
"""

import numpy as np
import pytest

from repro.core import (
    exact_weighted_knn_shapley,
    get_kernel,
    pad_weight_table,
    shapley_by_subsets,
    shapley_difference_from_groups,
    weighted_knn_group_weight_totals,
    weighted_knn_pair_groups,
    weighted_rank_values,
    weighted_shapley_single_test,
)
from repro.core.kernels import RankPlan, _pad_weight
from repro.core.piecewise import knn_group_weight_closed_form
from repro.datasets import gaussian_blobs, regression_dataset
from repro.exceptions import ParameterError
from repro.knn import argsort_by_distance
from repro.knn.weights import weight_position_table
from repro.utility import (
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)

RANK_ONLY = ("uniform", "rank")
ALL_WEIGHTS = ("uniform", "rank", "inverse_distance", "gaussian")


@pytest.fixture(scope="module")
def cls_plan():
    data = gaussian_blobs(n_train=18, n_test=3, n_features=5, seed=711)
    order, dist = argsort_by_distance(data.x_test, data.x_train)
    return RankPlan.from_order(
        order, data.y_train, data.y_test, distances=dist
    )


@pytest.fixture(scope="module")
def reg_plan():
    data = regression_dataset(n_train=15, n_test=2, n_features=4, seed=712)
    order, dist = argsort_by_distance(data.x_test, data.x_train)
    return RankPlan.from_order(
        order,
        np.asarray(data.y_train, dtype=np.float64),
        data.y_test,
        distances=dist,
    )


# ----------------------------------------------------- layer 1: piecewise
@pytest.mark.parametrize("k", [2, 3])
@pytest.mark.parametrize("weights", RANK_ONLY)
def test_piecewise_bit_matches_reference(cls_plan, k, weights):
    kernel = get_kernel("weighted")
    ref = kernel.values_from_plan(cls_plan, k, weights=weights, mode="reference")
    fast = kernel.values_from_plan(cls_plan, k, weights=weights, mode="piecewise")
    assert np.max(np.abs(fast - ref)) <= 1e-12
    assert fast.dtype == np.float64 and fast.flags["C_CONTIGUOUS"]


@pytest.mark.parametrize("weights", RANK_ONLY)
def test_piecewise_matches_brute_force(tiny_cls, weights):
    """Exhaustive 2^N oracle at tiny N, through the single-shot wrapper."""
    k = 2
    utility = WeightedKNNClassificationUtility(tiny_cls, k, weights=weights)
    oracle = shapley_by_subsets(utility)
    fast = exact_weighted_knn_shapley(
        tiny_cls, k, weights=weights, mode="piecewise"
    )
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)
    assert fast.extra["weighted_path"] == "piecewise"


def test_pair_groups_agree_with_closed_form_totals():
    """The explicit Appendix-F groups (through Lemma 1) equal the
    vectorized closed-form counting sums for every adjacent pair."""
    n, k = 11, 3
    table = weight_position_table("rank", k)
    totals = weighted_knn_group_weight_totals(n, k, table)
    for i in range(1, n):
        constants, group_sizes = weighted_knn_pair_groups(n, i, k, table)
        via_lemma = shapley_difference_from_groups(n, constants, group_sizes)
        assert totals[i - 1] == pytest.approx((n - 1) * via_lemma, abs=1e-12)


def test_unit_weight_table_recovers_theorem1_factor():
    """With the constant 1/K table (the unweighted utility, eq 5) the
    weighted counting sums collapse to Theorem 1's closed form."""
    n, k = 13, 3
    table = np.full((k, k), 1.0 / k)
    totals = weighted_knn_group_weight_totals(n, k, table)
    for i in range(1, n):
        expected = knn_group_weight_closed_form(n, i, k) / k
        assert totals[i - 1] == pytest.approx(expected, abs=1e-12)


def test_piecewise_needs_no_distances(cls_plan):
    """Rank-only weights never read distances, so a distance-free plan
    is acceptable on the piecewise path (unlike the other paths)."""
    plan = RankPlan.from_order(
        cls_plan.order, cls_plan.y_train, cls_plan.y_test
    )
    kernel = get_kernel("weighted")
    fast = kernel.values_from_plan(plan, 2, weights="rank", mode="piecewise")
    ref = kernel.values_from_plan(
        cls_plan, 2, weights="rank", mode="reference"
    )
    assert np.max(np.abs(fast - ref)) <= 1e-12


# --------------------------------------------- layer 2: vectorized engine
@pytest.mark.parametrize("k", [2, 3])
@pytest.mark.parametrize("weights", ALL_WEIGHTS)
def test_vectorized_bit_matches_reference_classification(cls_plan, k, weights):
    kernel = get_kernel("weighted")
    ref = kernel.values_from_plan(cls_plan, k, weights=weights, mode="reference")
    fast = kernel.values_from_plan(
        cls_plan, k, weights=weights, mode="vectorized"
    )
    assert np.max(np.abs(fast - ref)) <= 1e-12


@pytest.mark.parametrize("k", [2, 3])
@pytest.mark.parametrize("weights", ALL_WEIGHTS)
def test_vectorized_bit_matches_reference_regression(reg_plan, k, weights):
    kernel = get_kernel("weighted")
    ref = kernel.values_from_plan(
        reg_plan, k, weights=weights, task="regression", mode="reference"
    )
    fast = kernel.values_from_plan(
        reg_plan, k, weights=weights, task="regression", mode="vectorized"
    )
    assert np.max(np.abs(fast - ref)) <= 1e-12


def test_vectorized_matches_brute_force(tiny_cls, tiny_reg):
    k = 2
    cls_utility = WeightedKNNClassificationUtility(
        tiny_cls, k, weights="inverse_distance"
    )
    oracle = shapley_by_subsets(cls_utility)
    fast = exact_weighted_knn_shapley(
        tiny_cls, k, weights="inverse_distance", mode="vectorized"
    )
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)

    reg_utility = WeightedKNNRegressionUtility(
        tiny_reg, k, weights="inverse_distance"
    )
    reg_oracle = shapley_by_subsets(reg_utility)
    reg_fast = exact_weighted_knn_shapley(
        tiny_reg,
        k,
        weights="inverse_distance",
        task="regression",
        mode="vectorized",
    )
    np.testing.assert_allclose(reg_fast.values, reg_oracle.values, atol=1e-10)


def test_vectorized_custom_callable_fallback(cls_plan):
    """Unknown callables take the per-row weight loop but the same
    batched recursion — values still match the reference."""

    def halving(distances: np.ndarray) -> np.ndarray:
        w = 0.5 ** np.arange(1, distances.size + 1)
        return w / w.sum() if w.size else w

    kernel = get_kernel("weighted")
    ref = kernel.values_from_plan(cls_plan, 2, weights=halving, mode="reference")
    fast = kernel.values_from_plan(
        cls_plan, 2, weights=halving, mode="vectorized"
    )
    assert np.max(np.abs(fast - ref)) <= 1e-12


def test_single_test_vectorized_mode_matches_reference(tiny_cls):
    utility = WeightedKNNClassificationUtility(
        tiny_cls, 2, weights="inverse_distance"
    )
    ref = weighted_shapley_single_test(utility, 0, mode="reference")
    fast = weighted_shapley_single_test(utility, 0, mode="vectorized")
    assert np.max(np.abs(fast - ref)) <= 1e-12
    with pytest.raises(ParameterError):
        weighted_shapley_single_test(utility, 0, mode="nope")


def test_per_test_value_many_matches_scalar(tiny_cls, tiny_reg):
    rng = np.random.default_rng(7)
    for utility in (
        WeightedKNNClassificationUtility(
            tiny_cls, 2, weights="inverse_distance"
        ),
        WeightedKNNRegressionUtility(tiny_reg, 2, weights="gaussian"),
    ):
        n = utility.n_players
        for m in (0, 1, 2, 3):
            block = np.stack(
                [
                    rng.choice(n, size=m, replace=False)
                    for _ in range(6)
                ]
            ).astype(np.intp) if m else np.zeros((6, 0), dtype=np.intp)
            for j in range(2):
                many = utility.per_test_value_many(block, j)
                one_by_one = [
                    utility.per_test_value(row, j) for row in block
                ]
                np.testing.assert_allclose(many, one_by_one, atol=1e-13)
        with pytest.raises(ParameterError):
            utility.per_test_value_many(np.arange(3), 0)  # 1-D block


def test_pad_weight_table_matches_scalar():
    for n, k in ((9, 2), (12, 3), (7, 1), (6, 5)):
        table = pad_weight_table(n, k)
        for rmax in range(1, n + 1):
            assert table[rmax] == pytest.approx(
                _pad_weight(n, k, rmax), abs=1e-13
            )


def test_bounded_memo_changes_nothing(cls_plan):
    """A tiny cache bound forces evictions/re-evaluations but must not
    change a single value."""
    order = cls_plan.order[0]
    labels = cls_plan.y_train
    match = (labels[order] == cls_plan.y_test[0]).astype(np.float64)
    n, k = order.shape[0], 2

    def v(rank_members):
        if not rank_members:
            return 0.0
        sel = np.asarray(rank_members[:k], dtype=np.intp) - 1
        return float(match[sel].mean())

    calls = {"n": 0}

    def counting_v(rank_members):
        calls["n"] += 1
        return v(rank_members)

    unbounded = weighted_rank_values(v, n, k, max_cache_entries=None)
    bounded = weighted_rank_values(counting_v, n, k, max_cache_entries=4)
    np.testing.assert_array_equal(bounded, unbounded)
    # the bound really evicted: more oracle calls than distinct coalitions
    distinct = 1 + n + n * (n - 1) // 2
    assert calls["n"] > distinct
    with pytest.raises(ParameterError):
        weighted_rank_values(v, n, k, max_cache_entries=0)


# ------------------------------------------------------- mode selection
def test_select_path_auto_routing():
    kernel = get_kernel("weighted")
    assert kernel.select_path(1, "inverse_distance") == "k1"
    assert kernel.select_path(2, "rank") == "piecewise"
    assert kernel.select_path(2, "uniform") == "piecewise"
    assert kernel.select_path(2, "inverse_distance") == "vectorized"
    assert kernel.select_path(2, "gaussian") == "vectorized"
    # regression rank-only weights take the moment-based piecewise path
    assert kernel.select_path(2, "rank", task="regression") == "piecewise"
    # callables are never the k1 collapse; rank_only opt-in is honored
    def custom(d):
        return np.full(d.shape, 1.0 / max(1, d.size))

    assert kernel.select_path(1, custom) == "vectorized"
    custom.rank_only = True
    assert kernel.select_path(2, custom) == "piecewise"
    # explicit modes force their path
    assert kernel.select_path(1, "rank", mode="reference") == "reference"
    assert kernel.select_path(2, "rank", mode="vectorized") == "vectorized"


def test_select_path_validation():
    kernel = get_kernel("weighted")
    with pytest.raises(ParameterError):
        kernel.select_path(2, "inverse_distance", mode="piecewise")
    # regression piecewise is now supported for rank-only weights
    assert (
        kernel.select_path(2, "rank", task="regression", mode="piecewise")
        == "piecewise"
    )
    with pytest.raises(ParameterError):
        kernel.select_path(2, "rank", mode="warp-speed")
    with pytest.raises(ParameterError):
        kernel.select_path(2, "rank", task="ranking")


def test_auto_mode_takes_fast_paths(cls_plan):
    """mode='auto' must route by capability and stay within 1e-12 of
    the reference on every route."""
    kernel = get_kernel("weighted")
    for weights in ALL_WEIGHTS:
        ref = kernel.values_from_plan(
            cls_plan, 2, weights=weights, mode="reference"
        )
        auto = kernel.values_from_plan(cls_plan, 2, weights=weights)
        assert np.max(np.abs(auto - ref)) <= 1e-12


def test_wrapper_surfaces_weighted_path(tiny_cls):
    ref = exact_weighted_knn_shapley(tiny_cls, 2, weights="rank")
    assert ref.extra["weighted_path"] == "reference"
    auto = exact_weighted_knn_shapley(tiny_cls, 2, weights="rank", mode="auto")
    assert auto.extra["weighted_path"] == "piecewise"
    np.testing.assert_allclose(auto.values, ref.values, atol=1e-12)
    vec = exact_weighted_knn_shapley(
        tiny_cls, 2, weights="inverse_distance", mode="auto"
    )
    assert vec.extra["weighted_path"] == "vectorized"
