"""Tests for the brute-force oracles themselves."""

import numpy as np
import pytest

from repro.core import (
    all_subset_values,
    shapley_by_permutations,
    shapley_by_subsets,
)
from repro.exceptions import ParameterError
from repro.utility import KNNClassificationUtility
from repro.utility.base import UtilityFunction


class _DictUtility(UtilityFunction):
    """A utility defined by an explicit table, for hand-checked games."""

    def __init__(self, n: int, table: dict[frozenset, float]) -> None:
        self.n_players = n
        self._table = table

    def _evaluate(self, members: np.ndarray) -> float:
        return self._table.get(frozenset(int(i) for i in members), 0.0)


def test_two_player_glove_game():
    """Classic: v({0,1}) = 1, singletons 0 -> each player gets 1/2."""
    u = _DictUtility(2, {frozenset({0, 1}): 1.0})
    result = shapley_by_subsets(u)
    np.testing.assert_allclose(result.values, [0.5, 0.5])


def test_three_player_majority_game():
    """v(S) = 1 iff |S| >= 2: each of 3 symmetric players gets 1/3."""
    table = {}
    for a in range(3):
        for b in range(a + 1, 3):
            table[frozenset({a, b})] = 1.0
    table[frozenset({0, 1, 2})] = 1.0
    u = _DictUtility(3, table)
    result = shapley_by_subsets(u)
    np.testing.assert_allclose(result.values, [1 / 3] * 3)


def test_dictator_game():
    """v(S) = 1 iff player 0 in S: player 0 takes everything."""
    table = {
        frozenset(s | {0}): 1.0
        for s in [set(), {1}, {2}, {1, 2}]
    }
    u = _DictUtility(3, table)
    result = shapley_by_subsets(u)
    np.testing.assert_allclose(result.values, [1.0, 0.0, 0.0])


def test_subsets_and_permutations_agree(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    a = shapley_by_subsets(utility)
    b = shapley_by_permutations(utility)
    np.testing.assert_allclose(a.values, b.values, atol=1e-12)


def test_all_subset_values_indexing(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 1)
    v = all_subset_values(utility)
    assert v.shape == (2**tiny_cls.n_train,)
    assert v[0] == pytest.approx(utility.empty_value())
    assert v[-1] == pytest.approx(utility.grand_value())
    # spot-check one mask
    mask = 0b1011
    members = np.array([0, 1, 3])
    assert v[mask] == pytest.approx(utility._evaluate(members))


def test_size_limits():
    u = _DictUtility(25, {})
    with pytest.raises(ParameterError):
        shapley_by_subsets(u)
    u11 = _DictUtility(11, {})
    with pytest.raises(ParameterError):
        shapley_by_permutations(u11)


def test_additivity_axiom(tiny_cls):
    """s(v1 + v2) = s(v1) + s(v2)."""
    u1 = KNNClassificationUtility(tiny_cls, 1)
    u2 = KNNClassificationUtility(tiny_cls, 3)

    class _Sum(UtilityFunction):
        n_players = tiny_cls.n_train

        def _evaluate(self, members):
            return u1._evaluate(members) + u2._evaluate(members)

    s1 = shapley_by_subsets(u1).values
    s2 = shapley_by_subsets(u2).values
    s12 = shapley_by_subsets(_Sum()).values
    np.testing.assert_allclose(s12, s1 + s2, atol=1e-12)
