"""Tests for the exact unweighted KNN regression Shapley (Theorem 6)."""

import numpy as np
import pytest

from repro.core import (
    exact_knn_regression_shapley,
    regression_shapley_from_order,
    shapley_by_subsets,
)
from repro.datasets import regression_dataset
from repro.exceptions import ParameterError
from repro.utility import KNNRegressionUtility


@pytest.mark.parametrize("k", [1, 2, 3, 5])
def test_matches_brute_force(tiny_reg, k):
    utility = KNNRegressionUtility(tiny_reg, k)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_regression_shapley(tiny_reg, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


@pytest.mark.parametrize("k", [1, 2, 4])
def test_group_rationality_includes_empty_value(tiny_reg, k):
    """Sum of values equals v(I) - v(∅) with v(∅) = -E[y_test^2]."""
    utility = KNNRegressionUtility(tiny_reg, k)
    result = exact_knn_regression_shapley(tiny_reg, k)
    assert result.total() == pytest.approx(utility.total_gain(), abs=1e-10)


def test_equal_labels_equal_adjacent_values():
    """Theorem 6: adjacent points with equal labels have equal values."""
    data = regression_dataset(n_train=20, n_test=1, seed=5)
    # Force duplicated labels among neighbors
    y = np.round(np.asarray(data.y_train), 1)
    from repro.types import Dataset

    data = Dataset(data.x_train, y, data.x_test, data.y_test)
    k = 3
    result = exact_knn_regression_shapley(data, k)
    utility = KNNRegressionUtility(data, k)
    order = utility.order[0]
    vals = result.values[order]
    labels = np.asarray(data.y_train)[order]
    for i in range(len(order) - 1):
        if labels[i] == labels[i + 1]:
            assert vals[i] == pytest.approx(vals[i + 1], abs=1e-12)


def test_k_larger_than_n(tiny_reg):
    utility = KNNRegressionUtility(tiny_reg, 10)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_regression_shapley(tiny_reg, 10)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


def test_single_point_dataset():
    data = regression_dataset(n_train=1, n_test=2, seed=3)
    utility = KNNRegressionUtility(data, 1)
    result = exact_knn_regression_shapley(data, 1)
    assert result.values[0] == pytest.approx(utility.total_gain(), abs=1e-12)


def test_two_point_dataset():
    data = regression_dataset(n_train=2, n_test=1, seed=4)
    utility = KNNRegressionUtility(data, 1)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_regression_shapley(data, 1)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)


def test_multi_test_is_average(tiny_reg):
    k = 2
    full = exact_knn_regression_shapley(tiny_reg, k)
    singles = [
        exact_knn_regression_shapley(tiny_reg.single_test(j), k).values
        for j in range(tiny_reg.n_test)
    ]
    np.testing.assert_allclose(full.values, np.mean(singles, axis=0), atol=1e-12)


def test_from_order_matches_wrapper(tiny_reg):
    utility = KNNRegressionUtility(tiny_reg, 2)
    values, per_test = regression_shapley_from_order(
        utility.order, tiny_reg.y_train, tiny_reg.y_test, 2
    )
    result = exact_knn_regression_shapley(tiny_reg, 2)
    np.testing.assert_allclose(values, result.values)
    np.testing.assert_allclose(per_test, result.extra["per_test"])


def test_rejects_bad_k(tiny_reg):
    with pytest.raises(ParameterError):
        exact_knn_regression_shapley(tiny_reg, 0)


def test_constant_labels_zero_differences():
    """With identical training labels every point has the same value."""
    data = regression_dataset(n_train=10, n_test=2, seed=6)
    from repro.types import Dataset

    const = Dataset(
        data.x_train,
        np.full(10, 0.7),
        data.x_test,
        data.y_test,
    )
    result = exact_knn_regression_shapley(const, 3)
    assert np.allclose(result.values, result.values[0])
