"""Tests for the rank-space kernel layer (RankPlan + registry)."""

import numpy as np
import pytest

from repro.core import (
    RankPlan,
    available_kernels,
    exact_knn_regression_shapley,
    exact_knn_shapley,
    exact_weighted_knn_shapley,
    get_kernel,
    improved_mc_shapley,
    register_kernel,
    truncated_knn_shapley,
    truncation_rank,
)
from repro.core.delta import suffix_rank_values
from repro.core.kernels import (
    KernelCapabilities,
    ValuationKernel,
    classification_rank_values,
)
from repro.datasets import gaussian_blobs, regression_dataset
from repro.exceptions import ParameterError
from repro.knn import argsort_by_distance, top_k
from repro.utility.knn_utility import KNNClassificationUtility
from repro.utility.regression_utility import KNNRegressionUtility
from repro.utility.weighted_utility import WeightedKNNClassificationUtility


@pytest.fixture(scope="module")
def cls_data():
    return gaussian_blobs(n_train=24, n_test=4, n_features=6, seed=707)


@pytest.fixture(scope="module")
def reg_data():
    return regression_dataset(n_train=20, n_test=3, n_features=5, seed=708)


# --------------------------------------------------------------- registry
def test_registry_contents_and_capabilities():
    names = available_kernels()
    for name in ("exact", "truncated", "regression", "weighted"):
        assert name in names

    exact = get_kernel("exact")
    assert exact.capabilities.needs_full_ranking
    assert exact.capabilities.supports_incremental
    assert not exact.capabilities.supports_regression

    truncated = get_kernel("truncated")
    assert not truncated.capabilities.needs_full_ranking
    assert not truncated.capabilities.supports_incremental

    regression = get_kernel("regression")
    assert regression.capabilities.needs_full_ranking
    assert regression.capabilities.supports_regression
    assert not regression.capabilities.supports_incremental

    weighted = get_kernel("weighted")
    assert weighted.capabilities.needs_full_ranking
    assert weighted.capabilities.needs_distances
    assert weighted.capabilities.supports_regression

    with pytest.raises(ParameterError):
        get_kernel("no-such-kernel")


# ------------------------------------------------- bit-identity regression
def test_exact_kernel_bit_identical_to_wrapper(cls_data):
    k = 3
    order, _ = argsort_by_distance(cls_data.x_test, cls_data.x_train)
    plan = RankPlan.from_order(order, cls_data.y_train, cls_data.y_test)
    per_test = get_kernel("exact").values_from_plan(plan, k)
    reference = exact_knn_shapley(cls_data, k)
    np.testing.assert_array_equal(per_test, reference.extra["per_test"])
    np.testing.assert_array_equal(per_test.mean(axis=0), reference.values)
    assert per_test.dtype == np.float64 and per_test.flags["C_CONTIGUOUS"]


def test_truncated_kernel_bit_identical_to_wrapper(cls_data):
    k, epsilon = 2, 0.15
    k_star = truncation_rank(k, epsilon)
    idx, _ = top_k(
        cls_data.x_test, cls_data.x_train, min(k_star, cls_data.n_train)
    )
    plan = RankPlan.from_order(idx, cls_data.y_train, cls_data.y_test)
    per_test = get_kernel("truncated").values_from_plan(
        plan, k, k_star=k_star, exact_anchor=True
    )
    reference = truncated_knn_shapley(cls_data, k, epsilon)
    np.testing.assert_array_equal(per_test, reference.extra["per_test"])
    assert per_test.dtype == np.float64 and per_test.flags["C_CONTIGUOUS"]


def test_regression_kernel_bit_identical_to_wrapper(reg_data):
    k = 3
    order, _ = argsort_by_distance(reg_data.x_test, reg_data.x_train)
    plan = RankPlan.from_order(
        order, np.asarray(reg_data.y_train, dtype=np.float64), reg_data.y_test
    )
    per_test = get_kernel("regression").values_from_plan(plan, k)
    reference = exact_knn_regression_shapley(reg_data, k)
    np.testing.assert_array_equal(per_test, reference.extra["per_test"])
    assert per_test.dtype == np.float64 and per_test.flags["C_CONTIGUOUS"]


def test_weighted_kernel_reference_bit_identical_to_wrapper(cls_data):
    k = 2
    order, dist = argsort_by_distance(cls_data.x_test, cls_data.x_train)
    plan = RankPlan.from_order(
        order, cls_data.y_train, cls_data.y_test, distances=dist
    )
    per_test = get_kernel("weighted").values_from_plan(
        plan, k, weights="inverse_distance", mode="reference"
    )
    reference = exact_weighted_knn_shapley(cls_data, k, weights="inverse_distance")
    np.testing.assert_array_equal(per_test, reference.extra["per_test"])
    assert per_test.dtype == np.float64 and per_test.flags["C_CONTIGUOUS"]


def test_delta_repair_path_bit_identical_to_kernel(cls_data):
    """The rank-local suffix recomputation of core.delta shares the
    kernel recursion's floating-point evaluation order exactly."""
    k = 3
    order, _ = argsort_by_distance(cls_data.x_test, cls_data.x_train)
    match = (cls_data.y_train[order] == cls_data.y_test[:, None]).astype(
        np.float64
    )
    s_rank = classification_rank_values(match, k)
    for j in range(match.shape[0]):
        for start in (0, 1, match.shape[1] // 2, match.shape[1] - 1):
            np.testing.assert_array_equal(
                suffix_rank_values(match[j], start, k), s_rank[j, start:]
            )


# --------------------------------------------------- cross-kernel vs MC
def test_every_kernel_matches_montecarlo_on_small_n():
    data = gaussian_blobs(n_train=8, n_test=2, n_features=4, seed=709)
    k = 2
    order, dist = argsort_by_distance(data.x_test, data.x_train)
    plan = RankPlan.from_order(order, data.y_train, data.y_test, distances=dist)

    exact = get_kernel("exact").values_from_plan(plan, k).mean(axis=0)
    mc = improved_mc_shapley(
        KNNClassificationUtility(data, k), n_permutations=6000, seed=0
    )
    assert np.max(np.abs(exact - mc.values)) < 0.05

    # with k_star >= n nothing is truncated: equals exact, matches MC
    truncated = (
        get_kernel("truncated")
        .values_from_plan(plan, k, k_star=data.n_train, exact_anchor=True)
        .mean(axis=0)
    )
    np.testing.assert_allclose(truncated, exact, atol=1e-12)
    assert np.max(np.abs(truncated - mc.values)) < 0.05

    weighted = (
        get_kernel("weighted")
        .values_from_plan(plan, k, weights="inverse_distance")
        .mean(axis=0)
    )
    mc_w = improved_mc_shapley(
        WeightedKNNClassificationUtility(data, k, weights="inverse_distance"),
        n_permutations=6000,
        seed=1,
    )
    assert np.max(np.abs(weighted - mc_w.values)) < 0.05

    reg = regression_dataset(n_train=8, n_test=2, n_features=3, seed=710)
    r_order, _ = argsort_by_distance(reg.x_test, reg.x_train)
    r_plan = RankPlan.from_order(r_order, reg.y_train, reg.y_test)
    regression = (
        get_kernel("regression").values_from_plan(r_plan, k).mean(axis=0)
    )
    mc_r = improved_mc_shapley(
        KNNRegressionUtility(reg, k), n_permutations=6000, seed=2
    )
    # regression utilities have a wider range, so a looser absolute bar
    spread = np.max(np.abs(regression)) + 1.0
    assert np.max(np.abs(regression - mc_r.values)) < 0.1 * spread


# ------------------------------------------- exact vs weighted agreement
def test_weighted_unit_weights_k1_bit_identical_to_exact(cls_data):
    """With K=1 every built-in weight function gives the lone neighbor
    weight exactly 1.0, so the weighted fast path runs the identical
    Theorem 1 recursion — bit-for-bit equality, not just closeness."""
    order, dist = argsort_by_distance(cls_data.x_test, cls_data.x_train)
    plan = RankPlan.from_order(
        order, cls_data.y_train, cls_data.y_test, distances=dist
    )
    exact = get_kernel("exact").values_from_plan(plan, 1)
    weighted = get_kernel("weighted").values_from_plan(
        plan, 1, weights="uniform", mode="auto"
    )
    np.testing.assert_array_equal(exact, weighted)


def test_weighted_unit_weights_k2_matches_exact(cls_data):
    """A custom 1/K weight function reproduces the unweighted utility
    (eq 5), so Theorem 7 must agree with Theorem 1 to rounding."""
    k = 2

    def unit_weights(distances):
        return np.full(distances.shape, 1.0 / k)

    order, dist = argsort_by_distance(cls_data.x_test, cls_data.x_train)
    plan = RankPlan.from_order(
        order, cls_data.y_train, cls_data.y_test, distances=dist
    )
    exact = get_kernel("exact").values_from_plan(plan, k)
    weighted = get_kernel("weighted").values_from_plan(
        plan, k, weights=unit_weights
    )
    np.testing.assert_allclose(weighted, exact, atol=1e-10)


def test_weighted_k1_fast_path_matches_reference(cls_data, reg_data):
    order, dist = argsort_by_distance(cls_data.x_test, cls_data.x_train)
    plan = RankPlan.from_order(
        order, cls_data.y_train, cls_data.y_test, distances=dist
    )
    fast = get_kernel("weighted").values_from_plan(
        plan, 1, weights="inverse_distance", mode="auto"
    )
    ref = get_kernel("weighted").values_from_plan(
        plan, 1, weights="inverse_distance", mode="reference"
    )
    np.testing.assert_allclose(fast, ref, atol=1e-12)

    r_order, r_dist = argsort_by_distance(reg_data.x_test, reg_data.x_train)
    r_plan = RankPlan.from_order(
        r_order, reg_data.y_train, reg_data.y_test, distances=r_dist
    )
    fast = get_kernel("weighted").values_from_plan(
        r_plan, 1, weights="uniform", task="regression", mode="auto"
    )
    ref = get_kernel("weighted").values_from_plan(
        r_plan, 1, weights="uniform", task="regression", mode="reference"
    )
    np.testing.assert_allclose(fast, ref, atol=1e-10)


# ----------------------------------------------------- plans and errors
def test_ragged_plan_scatters_zeros_for_missing_rows(cls_data):
    rows = [
        np.array([3, 0, 7], dtype=np.intp),
        np.empty(0, dtype=np.intp),
        np.array([1], dtype=np.intp),
        np.array([2, 4], dtype=np.intp),
    ]
    plan = RankPlan.from_neighbor_rows(rows, cls_data.y_train, cls_data.y_test)
    assert plan.lengths is not None
    per_test = get_kernel("truncated").values_from_plan(
        plan, 1, k_star=5, exact_anchor=True
    )
    assert per_test.shape == (4, cls_data.n_train)
    np.testing.assert_array_equal(per_test[1], 0.0)  # empty row -> zeros
    # columns never retrieved stay exactly zero
    untouched = np.setdiff1d(np.arange(cls_data.n_train), np.concatenate(rows))
    np.testing.assert_array_equal(per_test[:, untouched], 0.0)


def test_plan_and_kernel_validation(cls_data):
    order, dist = argsort_by_distance(cls_data.x_test, cls_data.x_train)
    with pytest.raises(ParameterError):
        RankPlan.from_order(order, cls_data.y_train, cls_data.y_test[:-1])
    with pytest.raises(ParameterError):
        RankPlan.from_order(
            order, cls_data.y_train, cls_data.y_test, distances=dist[:, :-1]
        )
    prefix_plan = RankPlan.from_order(
        order[:, :5], cls_data.y_train, cls_data.y_test
    )
    for name in ("exact", "regression", "weighted"):
        with pytest.raises(ParameterError):
            get_kernel(name).values_from_plan(prefix_plan, 2)
    full_plan = RankPlan.from_order(order, cls_data.y_train, cls_data.y_test)
    with pytest.raises(ParameterError):  # weighted needs distances
        get_kernel("weighted").values_from_plan(full_plan, 2)
    with pytest.raises(ParameterError):  # truncated needs a rank target
        get_kernel("truncated").values_from_plan(full_plan, 2)
    with pytest.raises(ParameterError):
        get_kernel("exact").values_from_plan(full_plan, 0)


def test_third_party_kernel_dispatches_through_engine(cls_data):
    """The registry is open: a registered kernel name is a valid engine
    method and inherits chunking/merging."""
    from repro.engine import ValuationEngine

    class UniformKernel(ValuationKernel):
        name = "test-uniform"
        capabilities = KernelCapabilities(
            needs_full_ranking=False,
            supports_incremental=False,
            supports_regression=True,
        )

        def values_from_plan(self, plan, k, **params):
            out = np.full(
                (plan.n_test, plan.n_train), 1.0 / plan.n_train
            )
            return np.ascontiguousarray(out)

    register_kernel(UniformKernel())
    assert "test-uniform" in available_kernels()
    engine = ValuationEngine(
        cls_data.x_train, cls_data.y_train, 2, chunk_size=2
    )
    result = engine.value(
        cls_data.x_test, cls_data.y_test, method="test-uniform"
    )
    np.testing.assert_allclose(
        result.values, np.full(cls_data.n_train, 1.0 / cls_data.n_train)
    )
    assert result.extra["kernel"] == "test-uniform"
