"""Tests for the permutation-budget bounds (Theorem 5 and baselines)."""

import numpy as np
import pytest

from repro.core import (
    bennett_approx_permutations,
    bennett_h,
    bennett_permutations,
    bennett_qi,
    hoeffding_permutations,
)
from repro.exceptions import ParameterError


def test_bennett_h_properties():
    assert bennett_h(0.0) == pytest.approx(0.0)
    # h is increasing and convex on [0, inf)
    u = np.linspace(0.0, 5.0, 50)
    h = np.asarray(bennett_h(u))
    assert np.all(np.diff(h) > 0)
    assert np.all(np.diff(h, 2) > -1e-12)
    # h(u) <= u^2 (used by the approximate bound derivation)
    assert np.all(h <= u**2 + 1e-12)


def test_qi_structure():
    q = bennett_qi(10, 3)
    assert q.shape == (10,)
    np.testing.assert_array_equal(q[:3], 0.0)
    expected = np.array([(i - 3) / i for i in range(4, 11)])
    np.testing.assert_allclose(q[3:], expected)
    assert np.all(np.diff(q[3:]) > 0)  # increases with rank


def test_hoeffding_grows_with_n():
    budgets = [
        hoeffding_permutations(0.1, 0.05, n, 1.0) for n in (100, 1000, 10000)
    ]
    assert budgets[0] < budgets[1] < budgets[2]


def test_bennett_flattens_with_n():
    """Figure 11's point: the Bennett budget barely moves with N while
    Hoeffding's keeps growing, so Bennett wins at scale.  (At small N
    the two are comparable — Bennett's h(u) ~ u^2/2 exponent is no
    tighter per point; the win comes from far points' tiny variance.)"""
    ns = (100, 10000, 1000000, 100000000)
    budgets = [bennett_permutations(0.1, 0.05, n, 1, 1.0) for n in ns]
    assert budgets[-1] <= budgets[0] * 1.1  # nearly flat
    hoeff = [hoeffding_permutations(0.1, 0.05, n, 1.0) for n in ns]
    assert hoeff[-1] > hoeff[0] * 2  # Hoeffding keeps growing
    assert budgets[-1] < hoeff[-1]  # Bennett wins at large N


def test_bennett_solves_equation():
    """The returned T satisfies eq (32)'s LHS <= delta/2 and T-1 does not."""
    eps, delta, n, k, r = 0.1, 0.05, 500, 3, 1.0
    t_star = bennett_permutations(eps, delta, n, k, r)
    q = bennett_qi(n, k)
    one_minus = 1.0 - q**2
    exponents = one_minus * np.asarray(bennett_h(eps / (one_minus * r)))

    def lhs(t):
        return float(np.exp(-t * exponents).sum())

    assert lhs(t_star) <= delta / 2 + 1e-9
    assert lhs(max(t_star - 2, 0)) > delta / 2


def test_bennett_approx_independent_of_n():
    a = bennett_approx_permutations(0.1, 0.05, 3, 1.0)
    assert a == bennett_approx_permutations(0.1, 0.05, 3, 1.0)
    assert a > 0
    # grows with k and shrinks with epsilon
    assert bennett_approx_permutations(0.1, 0.05, 10, 1.0) > a
    assert bennett_approx_permutations(0.2, 0.05, 3, 1.0) < a


def test_knn_range_tightens_budgets():
    """r = 1/K for the KNN utility shrinks every budget by ~K^2."""
    loose = hoeffding_permutations(0.05, 0.05, 1000, 1.0)
    tight = hoeffding_permutations(0.05, 0.05, 1000, 1.0 / 5)
    assert tight < loose / 20


@pytest.mark.parametrize(
    "fn,args",
    [
        (hoeffding_permutations, (0.0, 0.1, 10, 1.0)),
        (hoeffding_permutations, (0.1, 0.0, 10, 1.0)),
        (hoeffding_permutations, (0.1, 1.5, 10, 1.0)),
        (hoeffding_permutations, (0.1, 0.1, 0, 1.0)),
        (hoeffding_permutations, (0.1, 0.1, 10, 0.0)),
        (bennett_permutations, (0.1, 0.1, 10, 0, 1.0)),
        (bennett_approx_permutations, (0.1, 0.1, 0, 1.0)),
    ],
)
def test_rejects_bad_parameters(fn, args):
    with pytest.raises(ParameterError):
        fn(*args)
