"""Tests for the exact weighted KNN Shapley (Theorem 7)."""

import numpy as np
import pytest

from repro.core import (
    exact_knn_shapley,
    exact_weighted_knn_shapley,
    shapley_by_subsets,
    weighted_shapley_single_test,
)
from repro.exceptions import ParameterError
from repro.utility import (
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)


@pytest.mark.parametrize("k", [1, 2, 3])
@pytest.mark.parametrize("weights", ["inverse_distance", "rank"])
def test_classification_matches_brute(tiny_cls, k, weights):
    utility = WeightedKNNClassificationUtility(tiny_cls, k, weights=weights)
    oracle = shapley_by_subsets(utility)
    fast = exact_weighted_knn_shapley(
        tiny_cls, k, weights=weights, task="classification"
    )
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_regression_matches_brute(tiny_reg, k):
    utility = WeightedKNNRegressionUtility(
        tiny_reg, k, weights="inverse_distance"
    )
    oracle = shapley_by_subsets(utility)
    fast = exact_weighted_knn_shapley(
        tiny_reg, k, weights="inverse_distance", task="regression"
    )
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


def test_uniform_weights_recover_unweighted(tiny_cls):
    """With 1/K weights the weighted utility equals eq (5), so the
    weighted algorithm must reproduce Theorem 1's values."""
    k = 3
    weighted = exact_weighted_knn_shapley(
        tiny_cls, k, weights="uniform", task="classification"
    )
    unweighted = exact_knn_shapley(tiny_cls, k)
    # Equal only when every coalition of size >= k is dominated by the
    # same top-k; for |S| < k, uniform weights normalize by |S| instead
    # of K, so the utilities differ.  Compare against brute force of the
    # weighted utility itself instead.
    utility = WeightedKNNClassificationUtility(tiny_cls, k, weights="uniform")
    oracle = shapley_by_subsets(utility)
    np.testing.assert_allclose(weighted.values, oracle.values, atol=1e-10)
    # and the rankings still agree strongly with the unweighted values
    assert np.corrcoef(weighted.values, unweighted.values)[0, 1] > 0.9


def test_group_rationality(tiny_cls):
    utility = WeightedKNNClassificationUtility(
        tiny_cls, 2, weights="inverse_distance"
    )
    result = exact_weighted_knn_shapley(
        tiny_cls, 2, weights="inverse_distance"
    )
    assert result.total() == pytest.approx(utility.total_gain(), abs=1e-10)


def test_single_test_entry_point(tiny_cls):
    utility = WeightedKNNClassificationUtility(
        tiny_cls, 2, weights="inverse_distance"
    )
    vals = weighted_shapley_single_test(utility, 0)
    full = exact_weighted_knn_shapley(
        tiny_cls, 2, weights="inverse_distance"
    )
    np.testing.assert_allclose(vals, full.extra["per_test"][0], atol=1e-12)


def test_single_training_point():
    from repro.datasets import gaussian_blobs

    data = gaussian_blobs(n_train=1, n_test=1, seed=0)
    utility = WeightedKNNClassificationUtility(
        data, 1, weights="inverse_distance"
    )
    result = exact_weighted_knn_shapley(data, 1, weights="inverse_distance")
    assert result.values[0] == pytest.approx(utility.total_gain())


def test_rejects_unknown_task(tiny_cls):
    with pytest.raises(ParameterError):
        exact_weighted_knn_shapley(tiny_cls, 2, task="ranking")


def test_custom_weight_callable(tiny_cls):
    def halving(distances: np.ndarray) -> np.ndarray:
        w = 0.5 ** np.arange(1, distances.size + 1)
        return w / w.sum() if w.size else w

    utility = WeightedKNNClassificationUtility(tiny_cls, 2, weights=halving)
    oracle = shapley_by_subsets(utility)
    fast = exact_weighted_knn_shapley(tiny_cls, 2, weights=halving)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)
