"""Tests for the composite game (Theorems 9-12)."""

import numpy as np
import pytest

from repro.core import (
    composite_grouped_knn_shapley,
    composite_knn_regression_shapley,
    composite_knn_shapley,
    composite_weighted_knn_shapley,
    exact_knn_shapley,
    shapley_by_subsets,
)
from repro.exceptions import ParameterError
from repro.utility import (
    CompositeUtility,
    GroupedUtility,
    KNNClassificationUtility,
    KNNRegressionUtility,
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_theorem9_matches_brute(tiny_cls, k):
    base = KNNClassificationUtility(tiny_cls, k)
    oracle = shapley_by_subsets(CompositeUtility(base))
    fast = composite_knn_shapley(tiny_cls, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_theorem10_matches_brute(tiny_reg, k):
    base = KNNRegressionUtility(tiny_reg, k)
    oracle = shapley_by_subsets(CompositeUtility(base))
    fast = composite_knn_regression_shapley(tiny_reg, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


@pytest.mark.parametrize("k", [1, 2])
def test_theorem11_classification_matches_brute(tiny_cls, k):
    base = WeightedKNNClassificationUtility(
        tiny_cls, k, weights="inverse_distance"
    )
    oracle = shapley_by_subsets(CompositeUtility(base))
    fast = composite_weighted_knn_shapley(
        tiny_cls, k, weights="inverse_distance"
    )
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


def test_theorem11_regression_matches_brute(tiny_reg):
    base = WeightedKNNRegressionUtility(
        tiny_reg, 2, weights="inverse_distance"
    )
    oracle = shapley_by_subsets(CompositeUtility(base))
    fast = composite_weighted_knn_shapley(
        tiny_reg, 2, weights="inverse_distance", task="regression"
    )
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


@pytest.mark.parametrize("k", [1, 2])
def test_theorem12_matches_brute(tiny_cls, tiny_grouped, k):
    base = KNNClassificationUtility(tiny_cls, k)
    oracle = shapley_by_subsets(
        CompositeUtility(GroupedUtility(base, tiny_grouped))
    )
    fast = composite_grouped_knn_shapley(base, tiny_grouped)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


def test_analyst_takes_at_least_half(tiny_cls):
    """eqs (88)-(89): every point's composite value is at most half its
    data-only value, so the analyst's share is at least one half."""
    k = 2
    composite = composite_knn_shapley(tiny_cls, k)
    total = composite.total()
    if total > 0:
        assert composite.values[-1] / total >= 0.5 - 1e-9


def test_ratio_identities(tiny_cls):
    """eq (88): composite/data-only anchor ratio; eq (89): difference
    ratio (min(i,K)+1) / (2(i+1)), checked per test point."""
    k = 2
    n = tiny_cls.n_train
    data_only = exact_knn_shapley(tiny_cls, k)
    composite = composite_knn_shapley(tiny_cls, k)
    base = KNNClassificationUtility(tiny_cls, k)
    for j in range(tiny_cls.n_test):
        order = base.order[j]
        s_d = data_only.extra["per_test"][j][order]
        s_c = composite.extra["per_test"][j][order]
        # anchor ratio (only meaningful when the data-only anchor != 0)
        if s_d[-1] != 0:
            assert s_c[-1] / s_d[-1] == pytest.approx(
                (min(n, k) + 1) / (2 * (n + 1))
            )
        for i in range(1, n):  # 1-based rank i
            dd = s_d[i - 1] - s_d[i]
            dc = s_c[i - 1] - s_c[i]
            if dd != 0:
                assert dc / dd == pytest.approx(
                    (min(i, k) + 1) / (2 * (i + 1))
                )


def test_group_rationality_composite(tiny_cls):
    base = KNNClassificationUtility(tiny_cls, 3)
    cu = CompositeUtility(base)
    result = composite_knn_shapley(tiny_cls, 3)
    assert result.total() == pytest.approx(cu.total_gain(), abs=1e-10)


def test_composite_regression_requires_enough_points(tiny_reg):
    with pytest.raises(ParameterError):
        composite_knn_regression_shapley(tiny_reg, tiny_reg.n_train)


def test_composite_total_point_mass_below_half(tiny_cls):
    """The data side collectively keeps at most half of the total gain
    (consequence of the <= 1/2 per-difference ratios of eqs 88-89)."""
    k = 2
    composite = composite_knn_shapley(tiny_cls, k)
    total = composite.total()
    if total > 0:
        assert composite.values[:-1].sum() <= 0.5 * total + 1e-9
