"""Tests for the exact unweighted KNN Shapley algorithm (Theorem 1)."""

import numpy as np
import pytest

from repro.core import (
    exact_knn_shapley,
    exact_knn_shapley_from_order,
    knn_shapley_single_test,
    shapley_by_permutations,
    shapley_by_subsets,
)
from repro.datasets import gaussian_blobs
from repro.exceptions import ParameterError
from repro.utility import KNNClassificationUtility


@pytest.mark.parametrize("k", [1, 2, 3, 5])
def test_matches_brute_force_subsets(tiny_cls, k):
    utility = KNNClassificationUtility(tiny_cls, k)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_shapley(tiny_cls, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)


@pytest.mark.parametrize("k", [1, 3])
def test_matches_brute_force_permutations(tiny_cls, k):
    utility = KNNClassificationUtility(tiny_cls, k)
    oracle = shapley_by_permutations(utility)
    fast = exact_knn_shapley(tiny_cls, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)


def test_multiclass_matches_brute_force(tiny_cls_multiclass):
    utility = KNNClassificationUtility(tiny_cls_multiclass, 2)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_shapley(tiny_cls_multiclass, 2)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)


@pytest.mark.parametrize("k", [1, 2, 4])
def test_group_rationality(tiny_cls, k):
    """Values sum to v(I) - v(∅) (here v(∅) = 0)."""
    utility = KNNClassificationUtility(tiny_cls, k)
    result = exact_knn_shapley(tiny_cls, k)
    assert result.total() == pytest.approx(utility.total_gain(), abs=1e-12)


def test_k_exceeding_n(tiny_cls):
    """K larger than the training size still matches the oracle."""
    utility = KNNClassificationUtility(tiny_cls, 12)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_shapley(tiny_cls, 12)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)


def test_appendix_c_bound(medium_cls):
    """|s_alpha_i| <= min(1/i, 1/K) per test point (Appendix C)."""
    k = 3
    result = exact_knn_shapley(medium_cls, k)
    per_test = result.extra["per_test"]
    utility = KNNClassificationUtility(medium_cls, k)
    for j in range(medium_cls.n_test):
        s_rank = per_test[j][utility.order[j]]
        ranks = np.arange(1, medium_cls.n_train + 1)
        bound = np.minimum(1.0 / ranks, 1.0 / k)
        assert np.all(np.abs(s_rank) <= bound + 1e-12)


def test_farthest_point_value(tiny_cls):
    """s_alpha_N = 1[match] / N for each single test point."""
    k = 2
    result = exact_knn_shapley(tiny_cls, k)
    per_test = result.extra["per_test"]
    utility = KNNClassificationUtility(tiny_cls, k)
    n = tiny_cls.n_train
    for j in range(tiny_cls.n_test):
        farthest = utility.order[j, -1]
        expected = float(
            tiny_cls.y_train[farthest] == tiny_cls.y_test[j]
        ) / n
        assert per_test[j, farthest] == pytest.approx(expected)


def test_average_over_tests_is_additive(tiny_cls):
    """The multi-test value equals the mean of single-test values."""
    k = 2
    full = exact_knn_shapley(tiny_cls, k)
    singles = [
        exact_knn_shapley(tiny_cls.single_test(j), k).values
        for j in range(tiny_cls.n_test)
    ]
    np.testing.assert_allclose(full.values, np.mean(singles, axis=0), atol=1e-12)


def test_single_training_point():
    data = gaussian_blobs(n_train=1, n_test=2, seed=0)
    result = exact_knn_shapley(data, 1)
    utility = KNNClassificationUtility(data, 1)
    assert result.values[0] == pytest.approx(utility.total_gain())


def test_from_order_and_values_scatter(tiny_cls):
    """exact_knn_shapley_from_order agrees with the dataset wrapper."""
    utility = KNNClassificationUtility(tiny_cls, 2)
    values, per_test = exact_knn_shapley_from_order(
        utility.order, tiny_cls.y_train, tiny_cls.y_test, 2
    )
    result = exact_knn_shapley(tiny_cls, 2)
    np.testing.assert_allclose(values, result.values)
    np.testing.assert_allclose(per_test, result.extra["per_test"])


def test_single_test_rank_values():
    """The streaming entry point follows the recursion literally."""
    y_sorted = np.array([1, 0, 1, 1, 0])
    vals = knn_shapley_single_test(y_sorted, 1, k=1)
    n = 5
    expected_last = 0.0 / n  # farthest has label 0 != 1
    assert vals[-1] == pytest.approx(expected_last)
    # recursion check for rank 4 -> 3 (labels 1 vs 0 at k=1)
    assert vals[3] - vals[4] == pytest.approx((1 - 0) / 1 * min(1, 4) / 4)


def test_rejects_bad_k(tiny_cls):
    with pytest.raises(ParameterError):
        exact_knn_shapley(tiny_cls, 0)
    with pytest.raises(ParameterError):
        exact_knn_shapley(tiny_cls, -3)


def test_identical_labels_give_identical_adjacent_values():
    """Adjacent-rank points with equal labels share a value."""
    data = gaussian_blobs(n_train=30, n_test=1, n_classes=2, seed=7)
    k = 3
    result = exact_knn_shapley(data, k)
    utility = KNNClassificationUtility(data, k)
    order = utility.order[0]
    labels = data.y_train[order]
    vals = result.values[order]
    for i in range(len(order) - 1):
        if labels[i] == labels[i + 1]:
            assert vals[i] == pytest.approx(vals[i + 1])
        # and the recursion sign: a matching nearer point never has a
        # smaller value than a mismatching farther one
