"""Tests for multi-data-per-curator valuation (Theorem 8)."""

import numpy as np
import pytest

from repro.core import (
    exact_grouped_knn_shapley,
    exact_knn_shapley,
    shapley_by_subsets,
)
from repro.datasets import assign_sellers, gaussian_blobs
from repro.exceptions import ParameterError
from repro.types import GroupedDataset
from repro.utility import (
    GroupedUtility,
    KNNClassificationUtility,
    KNNRegressionUtility,
)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_classification_matches_brute(tiny_cls, tiny_grouped, k):
    base = KNNClassificationUtility(tiny_cls, k)
    oracle = shapley_by_subsets(GroupedUtility(base, tiny_grouped))
    fast = exact_grouped_knn_shapley(base, tiny_grouped)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


@pytest.mark.parametrize("k", [1, 2])
def test_regression_matches_brute(tiny_reg, k):
    grouped = assign_sellers(tiny_reg, 4, seed=11)
    base = KNNRegressionUtility(tiny_reg, k)
    oracle = shapley_by_subsets(GroupedUtility(base, grouped))
    fast = exact_grouped_knn_shapley(base, grouped)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


def test_one_point_per_seller_reduces_to_pointwise(tiny_cls):
    """With singleton sellers the seller values equal the point values."""
    n = tiny_cls.n_train
    grouped = GroupedDataset(dataset=tiny_cls, groups=np.arange(n))
    base = KNNClassificationUtility(tiny_cls, 2)
    grouped_result = exact_grouped_knn_shapley(base, grouped)
    point_result = exact_knn_shapley(tiny_cls, 2)
    np.testing.assert_allclose(
        grouped_result.values, point_result.values, atol=1e-10
    )


def test_group_rationality(tiny_cls, tiny_grouped):
    base = KNNClassificationUtility(tiny_cls, 2)
    gu = GroupedUtility(base, tiny_grouped)
    result = exact_grouped_knn_shapley(base, tiny_grouped)
    assert result.total() == pytest.approx(gu.total_gain(), abs=1e-10)


def test_seller_with_all_data_gets_everything(tiny_cls):
    """A seller owning every point takes the entire gain... but every
    seller must own at least one point, so test the 2-seller split where
    one seller owns a single far point with zero marginal impact."""
    # K=1: only the nearest point matters per test; give seller 1 the
    # single globally farthest point from every test.
    base = KNNClassificationUtility(tiny_cls, 1)
    # farthest under every test ranking
    order = base.order
    candidates = set(order[0].tolist())
    for j in range(order.shape[0]):
        pass
    farthest_common = order[0, -1]
    groups = np.zeros(tiny_cls.n_train, dtype=np.intp)
    groups[farthest_common] = 1
    grouped = GroupedDataset(dataset=tiny_cls, groups=groups)
    result = exact_grouped_knn_shapley(base, grouped)
    oracle = shapley_by_subsets(GroupedUtility(base, grouped))
    np.testing.assert_allclose(result.values, oracle.values, atol=1e-12)


def test_k_one_reduction_is_fast():
    """K=1 grouped valuation handles many sellers quickly (M log M path)."""
    data = gaussian_blobs(n_train=200, n_test=3, seed=12)
    grouped = assign_sellers(data, 50, seed=13)
    base = KNNClassificationUtility(data, 1)
    result = exact_grouped_knn_shapley(base, grouped)
    assert result.values.shape == (50,)
    assert result.total() == pytest.approx(
        GroupedUtility(base, grouped).total_gain(), abs=1e-10
    )


def test_rejects_non_knn_utility(tiny_grouped):
    with pytest.raises(ParameterError):
        exact_grouped_knn_shapley(object(), tiny_grouped)


def test_null_seller_gets_zero():
    """A seller whose points are always beyond rank K for every test and
    never among the K nearest of any coalition... is impossible in
    general, but a duplicated-data seller shows symmetry instead: two
    sellers with identical data get identical values."""
    rng = np.random.default_rng(42)
    x = rng.standard_normal((6, 3))
    x = np.vstack([x, x[:2] + 1e-9])  # sellers 2 and 3 nearly identical
    y = np.array([0, 1, 0, 1, 0, 1, 0, 1])
    from repro.types import Dataset

    data = Dataset(x, y, rng.standard_normal((2, 3)), np.array([0, 1]))
    groups = np.array([0, 0, 1, 1, 2, 2, 3, 3])
    grouped = GroupedDataset(dataset=data, groups=groups)
    base = KNNClassificationUtility(data, 2)
    result = exact_grouped_knn_shapley(base, grouped)
    oracle = shapley_by_subsets(GroupedUtility(base, grouped))
    np.testing.assert_allclose(result.values, oracle.values, atol=1e-10)
