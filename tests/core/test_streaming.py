"""Tests for the streaming valuation accumulator."""

import warnings

import numpy as np
import pytest

from repro.core import StreamingKNNShapley, exact_knn_shapley
from repro.datasets import gaussian_blobs, mnist_deep_like
from repro.exceptions import ParameterError
from repro.metrics import max_abs_error


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(n_train=120, n_test=8, n_features=8, seed=61)


def test_exact_backend_matches_batch(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=3)
    for j in range(data.n_test):
        stream.update(data.x_test[j], data.y_test[j])
    batch = exact_knn_shapley(data, 3)
    np.testing.assert_allclose(
        stream.values().values, batch.values, atol=1e-12
    )
    assert stream.n_queries == data.n_test


def test_update_batch_equivalent(data):
    a = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    mean_contrib = a.update_batch(data.x_test, data.y_test)
    batch = exact_knn_shapley(data, 2)
    np.testing.assert_allclose(mean_contrib, batch.values, atol=1e-12)
    np.testing.assert_allclose(a.values().values, batch.values, atol=1e-12)


def test_single_update_returns_contribution(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    contrib = stream.update(data.x_test[0], data.y_test[0])
    single = exact_knn_shapley(data.single_test(0), 2)
    np.testing.assert_allclose(contrib, single.values, atol=1e-12)


def test_lsh_backend_within_epsilon():
    data = mnist_deep_like(n_train=1500, n_test=6, seed=62)
    stream = StreamingKNNShapley(
        data.x_train, data.y_train, k=1, backend="lsh",
        epsilon=0.1, delta=0.1, seed=0,
    )
    stream.update_batch(data.x_test, data.y_test)
    exact = exact_knn_shapley(data, 1)
    assert max_abs_error(stream.values().values, exact.values) <= 0.1
    assert stream.values().method == "streaming-lsh"


def test_reset(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    stream.update(data.x_test[0], data.y_test[0])
    stream.reset()
    assert stream.n_queries == 0
    with pytest.raises(ParameterError):
        stream.values()


def test_values_before_any_query(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    with pytest.raises(ParameterError):
        stream.values()


def test_dimension_mismatch(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    with pytest.raises(ParameterError):
        stream.update(np.zeros(3), 0)


def test_parameter_validation(data):
    with pytest.raises(ParameterError):
        StreamingKNNShapley(data.x_train, data.y_train, k=0)
    with pytest.raises(ParameterError):
        StreamingKNNShapley(
            data.x_train, data.y_train, k=2, backend="kdtree"
        )


# ------------------------------------------------------- dynamic training set
def test_add_points_mid_stream(data):
    """A point added mid-stream accumulates only from its arrival."""
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=3)
    stream.update_batch(data.x_test[:4], data.y_test[:4])
    newcomer = data.x_train[0] + 0.25
    idx = stream.add_points(newcomer, data.y_train[0])
    np.testing.assert_array_equal(idx, [120])
    assert stream.n_train == 121
    stream.update_batch(data.x_test[4:], data.y_test[4:])
    # reference: replay the same split by hand over two accumulators
    grown_x = np.vstack((data.x_train, newcomer[None, :]))
    grown_y = np.concatenate((data.y_train, data.y_train[:1]))
    ref = StreamingKNNShapley(grown_x, grown_y, k=3)
    phase1 = np.zeros(121)
    small = StreamingKNNShapley(data.x_train, data.y_train, k=3)
    for j in range(4):
        phase1[:120] += small.update(data.x_test[j], data.y_test[j])
    phase2 = np.zeros(121)
    for j in range(4, data.n_test):
        phase2 += ref.update(data.x_test[j], data.y_test[j])
    np.testing.assert_allclose(
        stream.values().values,
        (phase1 + phase2) / data.n_test,
        atol=1e-12,
    )


def test_remove_points_mid_stream(data):
    """Departed sellers leave; survivors keep their accumulated totals."""
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    c1 = stream.update(data.x_test[0], data.y_test[0])
    stream.remove_points([5, 50])
    assert stream.n_train == 118
    c2 = stream.update(data.x_test[1], data.y_test[1])
    shrunk_x = np.delete(data.x_train, [5, 50], axis=0)
    shrunk_y = np.delete(data.y_train, [5, 50])
    ref = StreamingKNNShapley(shrunk_x, shrunk_y, k=2)
    ref_c2 = ref.update(data.x_test[1], data.y_test[1])
    np.testing.assert_allclose(c2, ref_c2, atol=1e-12)
    np.testing.assert_allclose(
        stream.values().values, (np.delete(c1, [5, 50]) + c2) / 2, atol=1e-12
    )


def test_mutation_validation(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    with pytest.raises(ParameterError):
        stream.add_points(np.zeros((1, 3)), [0])  # wrong width
    with pytest.raises(ParameterError):
        stream.remove_points([500])
    stream.remove_points([])  # no-op
    assert stream.n_train == 120


def test_lsh_backend_small_mutation_updates_in_place(data):
    stream = StreamingKNNShapley(
        data.x_train, data.y_train, k=1, backend="lsh",
        epsilon=0.2, delta=0.2, seed=0,
    )
    stream.update(data.x_test[0], data.y_test[0])
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # bounded churn must not warn
        stream.add_points(data.x_train[3] + 0.1, data.y_train[3])
        stream.remove_points([5])
    assert stream.n_train == 120
    # the updated index serves subsequent queries
    stream.update(data.x_test[1], data.y_test[1])
    assert stream.n_queries == 2


def test_lsh_backend_drift_refits_with_warning(data, rng):
    stream = StreamingKNNShapley(
        data.x_train, data.y_train, k=1, backend="lsh",
        epsilon=0.2, delta=0.2, seed=0,
    )
    stream.update(data.x_test[0], data.y_test[0])
    grow = data.n_train // 3  # > 25% drift from the tuned size
    with pytest.warns(RuntimeWarning, match="full refit"):
        stream.add_points(
            rng.standard_normal((grow, data.n_features)),
            rng.integers(0, 2, grow),
        )
    assert stream.n_train == data.n_train + grow
    # the rebuilt index serves subsequent queries
    stream.update(data.x_test[1], data.y_test[1])
    assert stream.n_queries == 2
