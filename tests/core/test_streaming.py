"""Tests for the streaming valuation accumulator."""

import numpy as np
import pytest

from repro.core import StreamingKNNShapley, exact_knn_shapley
from repro.datasets import gaussian_blobs, mnist_deep_like
from repro.exceptions import ParameterError
from repro.metrics import max_abs_error


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(n_train=120, n_test=8, n_features=8, seed=61)


def test_exact_backend_matches_batch(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=3)
    for j in range(data.n_test):
        stream.update(data.x_test[j], data.y_test[j])
    batch = exact_knn_shapley(data, 3)
    np.testing.assert_allclose(
        stream.values().values, batch.values, atol=1e-12
    )
    assert stream.n_queries == data.n_test


def test_update_batch_equivalent(data):
    a = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    mean_contrib = a.update_batch(data.x_test, data.y_test)
    batch = exact_knn_shapley(data, 2)
    np.testing.assert_allclose(mean_contrib, batch.values, atol=1e-12)
    np.testing.assert_allclose(a.values().values, batch.values, atol=1e-12)


def test_single_update_returns_contribution(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    contrib = stream.update(data.x_test[0], data.y_test[0])
    single = exact_knn_shapley(data.single_test(0), 2)
    np.testing.assert_allclose(contrib, single.values, atol=1e-12)


def test_lsh_backend_within_epsilon():
    data = mnist_deep_like(n_train=1500, n_test=6, seed=62)
    stream = StreamingKNNShapley(
        data.x_train, data.y_train, k=1, backend="lsh",
        epsilon=0.1, delta=0.1, seed=0,
    )
    stream.update_batch(data.x_test, data.y_test)
    exact = exact_knn_shapley(data, 1)
    assert max_abs_error(stream.values().values, exact.values) <= 0.1
    assert stream.values().method == "streaming-lsh"


def test_reset(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    stream.update(data.x_test[0], data.y_test[0])
    stream.reset()
    assert stream.n_queries == 0
    with pytest.raises(ParameterError):
        stream.values()


def test_values_before_any_query(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    with pytest.raises(ParameterError):
        stream.values()


def test_dimension_mismatch(data):
    stream = StreamingKNNShapley(data.x_train, data.y_train, k=2)
    with pytest.raises(ParameterError):
        stream.update(np.zeros(3), 0)


def test_parameter_validation(data):
    with pytest.raises(ParameterError):
        StreamingKNNShapley(data.x_train, data.y_train, k=0)
    with pytest.raises(ParameterError):
        StreamingKNNShapley(
            data.x_train, data.y_train, k=2, backend="kdtree"
        )
