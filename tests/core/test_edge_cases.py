"""Edge-case agreement tests: degenerate geometries vs the brute oracle.

Distance ties, duplicated points, single-label training sets and
minimal sizes are where rank-based recursions usually break; every
case here is checked for exact agreement with subset enumeration.
"""

import numpy as np
import pytest

from repro.core import (
    exact_knn_regression_shapley,
    exact_knn_shapley,
    exact_weighted_knn_shapley,
    shapley_by_subsets,
)
from repro.types import Dataset
from repro.utility import (
    KNNClassificationUtility,
    KNNRegressionUtility,
    WeightedKNNClassificationUtility,
)


def _cls(x_train, y_train, x_test, y_test):
    return Dataset(
        np.asarray(x_train, float),
        np.asarray(y_train),
        np.asarray(x_test, float),
        np.asarray(y_test),
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def test_all_points_identical(k):
    """Every training point at the same location: total ties."""
    data = _cls(
        np.zeros((6, 2)),
        [0, 1, 0, 1, 0, 1],
        np.ones((2, 2)),
        [0, 1],
    )
    utility = KNNClassificationUtility(data, k)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_shapley(data, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)


@pytest.mark.parametrize("k", [1, 2])
def test_duplicated_pairs(k):
    """Pairs of coincident points with equal and opposite labels."""
    base = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    x = np.vstack([base, base])
    y = np.array([0, 1, 0, 0, 1, 1])
    data = _cls(x, y, np.array([[0.2, 0.1]]), np.array([0]))
    utility = KNNClassificationUtility(data, k)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_shapley(data, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)


def test_single_label_training_set():
    """Every training point matching the test label: uniform tail."""
    rng = np.random.default_rng(1)
    data = _cls(
        rng.standard_normal((7, 3)),
        np.zeros(7, dtype=int),
        rng.standard_normal((2, 3)),
        np.zeros(2, dtype=int),
    )
    k = 3
    utility = KNNClassificationUtility(data, k)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_shapley(data, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)
    # all matching: only the K nearest per test carry value, and no
    # value is negative
    assert np.all(fast.values >= -1e-15)


def test_no_label_matches():
    """No training point matches the test label: all values zero."""
    rng = np.random.default_rng(2)
    data = _cls(
        rng.standard_normal((6, 3)),
        np.zeros(6, dtype=int),
        rng.standard_normal((1, 3)),
        np.ones(1, dtype=int),
    )
    fast = exact_knn_shapley(data, 2)
    np.testing.assert_allclose(fast.values, 0.0, atol=1e-15)


@pytest.mark.parametrize("k", [1, 2])
def test_two_training_points(k):
    rng = np.random.default_rng(3)
    data = _cls(
        rng.standard_normal((2, 2)),
        [0, 1],
        rng.standard_normal((2, 2)),
        [1, 0],
    )
    utility = KNNClassificationUtility(data, k)
    oracle = shapley_by_subsets(utility)
    fast = exact_knn_shapley(data, k)
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)


def test_regression_with_tied_distances():
    data = Dataset(
        np.zeros((5, 2)),
        np.array([1.0, -1.0, 0.5, 2.0, 0.0]),
        np.ones((1, 2)),
        np.array([0.75]),
    )
    for k in (1, 2, 3):
        utility = KNNRegressionUtility(data, k)
        oracle = shapley_by_subsets(utility)
        fast = exact_knn_regression_shapley(data, k)
        np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


def test_weighted_with_exact_hits():
    """A training point coincident with the test point (distance 0)
    stresses the inverse-distance weight regularization."""
    x = np.array([[1.0, 1.0], [0.0, 0.0], [2.0, 0.5]])
    data = _cls(x, [0, 1, 0], np.array([[1.0, 1.0]]), np.array([0]))
    utility = WeightedKNNClassificationUtility(
        data, 2, weights="inverse_distance"
    )
    oracle = shapley_by_subsets(utility)
    fast = exact_weighted_knn_shapley(data, 2, weights="inverse_distance")
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)


def test_collinear_equidistant_ring():
    """Points on a ring around the test point: all ranks tied."""
    angles = np.linspace(0, 2 * np.pi, 8, endpoint=False)
    x = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    y = (np.arange(8) % 2).astype(int)
    data = _cls(x, y, np.zeros((1, 2)), np.array([1]))
    for k in (1, 3):
        utility = KNNClassificationUtility(data, k)
        oracle = shapley_by_subsets(utility)
        fast = exact_knn_shapley(data, k)
        np.testing.assert_allclose(fast.values, oracle.values, atol=1e-12)
