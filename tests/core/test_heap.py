"""Tests for the bounded max-heap behind Algorithm 2."""

import numpy as np
import pytest

from repro.core import KNearestHeap
from repro.exceptions import ParameterError


def test_fills_then_evicts():
    heap = KNearestHeap(2)
    assert heap.push(5.0, 0) == (True, None)
    assert heap.push(3.0, 1) == (True, None)
    assert heap.full
    # closer point evicts the current worst (payload 0 at distance 5)
    entered, evicted = heap.push(1.0, 2)
    assert entered and evicted == 0
    assert sorted(heap.payloads()) == [1, 2]


def test_far_point_rejected():
    heap = KNearestHeap(2)
    heap.push(1.0, 0)
    heap.push(2.0, 1)
    assert heap.push(9.0, 2) == (False, None)
    assert sorted(heap.payloads()) == [0, 1]


def test_tie_keeps_incumbent():
    heap = KNearestHeap(1)
    heap.push(1.0, 0)
    entered, evicted = heap.push(1.0, 1)
    assert not entered and evicted is None
    assert heap.payloads() == [0]


def test_max_distance():
    heap = KNearestHeap(3)
    assert heap.max_distance() == float("inf")
    heap.push(2.0, 0)
    heap.push(7.0, 1)
    assert heap.max_distance() == 7.0


def test_items_sorted():
    heap = KNearestHeap(3)
    for d, p in [(3.0, 0), (1.0, 1), (2.0, 2)]:
        heap.push(d, p)
    assert heap.items_sorted() == [(1.0, 1), (2.0, 2), (3.0, 0)]


def test_clear():
    heap = KNearestHeap(2)
    heap.push(1.0, 0)
    heap.clear()
    assert len(heap) == 0
    assert not heap.full


def test_matches_sort_on_random_stream(rng):
    """After any stream, the kept payloads are the true k smallest."""
    k = 5
    heap = KNearestHeap(k)
    dists = rng.uniform(0, 1, size=200)
    for i, d in enumerate(dists):
        heap.push(float(d), i)
    kept = sorted(heap.payloads())
    expected = sorted(np.argsort(dists, kind="stable")[:k].tolist())
    assert kept == expected


def test_rejects_bad_k():
    with pytest.raises(ParameterError):
        KNearestHeap(0)
