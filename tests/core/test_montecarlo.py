"""Tests for the Monte Carlo estimators (baseline and Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    baseline_mc_shapley,
    improved_mc_shapley,
    shapley_by_subsets,
)
from repro.exceptions import ParameterError
from repro.metrics import max_abs_error
from repro.utility import (
    GroupedUtility,
    KNNClassificationUtility,
    KNNRegressionUtility,
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)


def test_baseline_converges(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    oracle = shapley_by_subsets(utility)
    mc = baseline_mc_shapley(utility, n_permutations=3000, seed=7)
    assert max_abs_error(mc.values, oracle.values) < 0.02


def test_improved_converges_classification(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    oracle = shapley_by_subsets(utility)
    mc = improved_mc_shapley(utility, n_permutations=5000, seed=7)
    assert max_abs_error(mc.values, oracle.values) < 0.02


def test_improved_converges_regression(tiny_reg):
    utility = KNNRegressionUtility(tiny_reg, 2)
    oracle = shapley_by_subsets(utility)
    mc = improved_mc_shapley(utility, n_permutations=5000, seed=7)
    assert max_abs_error(mc.values, oracle.values) < 0.05


@pytest.mark.parametrize(
    "cls,task",
    [
        (WeightedKNNClassificationUtility, "classification"),
        (WeightedKNNRegressionUtility, "regression"),
    ],
)
def test_improved_converges_weighted(tiny_cls, tiny_reg, cls, task):
    data = tiny_cls if task == "classification" else tiny_reg
    utility = cls(data, 2, weights="inverse_distance")
    oracle = shapley_by_subsets(utility)
    mc = improved_mc_shapley(utility, n_permutations=5000, seed=7)
    assert max_abs_error(mc.values, oracle.values) < 0.05


def test_improved_converges_grouped(tiny_cls, tiny_grouped):
    base = KNNClassificationUtility(tiny_cls, 2)
    gu = GroupedUtility(base, tiny_grouped)
    oracle = shapley_by_subsets(gu)
    mc = improved_mc_shapley(gu, n_permutations=5000, seed=7)
    assert max_abs_error(mc.values, oracle.values) < 0.02


def test_improved_and_baseline_agree(tiny_cls):
    """Same estimand: with big budgets the two estimators coincide."""
    utility = KNNClassificationUtility(tiny_cls, 1)
    a = baseline_mc_shapley(utility, n_permutations=2000, seed=1)
    b = improved_mc_shapley(utility, n_permutations=2000, seed=1)
    assert max_abs_error(a.values, b.values) < 0.03


def test_identical_seeds_identical_results(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    a = improved_mc_shapley(utility, n_permutations=50, seed=99)
    b = improved_mc_shapley(utility, n_permutations=50, seed=99)
    np.testing.assert_array_equal(a.values, b.values)


def test_heuristic_stopping_terminates(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    result = improved_mc_shapley(
        utility, epsilon=0.2, stopping="heuristic", seed=3
    )
    assert result.extra["stopping"] == "heuristic"
    assert result.extra["n_permutations"] < 10**6


def test_bennett_budget_recorded(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    result = improved_mc_shapley(utility, epsilon=0.3, delta=0.2, seed=3)
    assert result.extra["stopping"] == "bennett"
    assert result.extra["n_permutations"] >= 1


def test_epsilon_delta_guarantee_bennett(tiny_cls):
    """With the Bennett budget the max error respects epsilon (checked
    on one seed — the guarantee is probabilistic)."""
    utility = KNNClassificationUtility(tiny_cls, 2)
    oracle = shapley_by_subsets(utility)
    result = improved_mc_shapley(utility, epsilon=0.1, delta=0.1, seed=5)
    assert max_abs_error(result.values, oracle.values) <= 0.1


def test_group_rationality_in_expectation(tiny_cls):
    """Every permutation's marginals telescope to v(I) - v(∅), so the
    estimate sums to the total gain exactly (not just in expectation)."""
    utility = KNNClassificationUtility(tiny_cls, 2)
    mc = improved_mc_shapley(utility, n_permutations=37, seed=11)
    assert mc.total() == pytest.approx(utility.total_gain(), abs=1e-9)
    mcb = baseline_mc_shapley(utility, n_permutations=17, seed=11)
    assert mcb.total() == pytest.approx(utility.total_gain(), abs=1e-9)


def test_rejects_bad_parameters(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    with pytest.raises(ParameterError):
        improved_mc_shapley(utility, n_permutations=0)
    with pytest.raises(ParameterError):
        improved_mc_shapley(utility, stopping="magic")
    with pytest.raises(ParameterError):
        baseline_mc_shapley(utility, n_permutations=-1)


def test_improved_rejects_non_knn_utility(tiny_cls):
    from repro.utility import CompositeUtility

    base = KNNClassificationUtility(tiny_cls, 2)
    with pytest.raises(ParameterError):
        improved_mc_shapley(CompositeUtility(base), n_permutations=5)


def test_baseline_handles_composite(tiny_cls):
    """The generic baseline can value the composite game."""
    from repro.core import composite_knn_shapley
    from repro.utility import CompositeUtility

    base = KNNClassificationUtility(tiny_cls, 2)
    cu = CompositeUtility(base)
    mc = baseline_mc_shapley(cu, n_permutations=3000, seed=2)
    exact = composite_knn_shapley(tiny_cls, 2)
    assert max_abs_error(mc.values, exact.values) < 0.05
