"""Tests for the truncated (epsilon, 0)-approximation (Theorem 2)."""

import math

import numpy as np
import pytest

from repro.core import (
    exact_knn_shapley,
    truncated_knn_shapley,
    truncated_values_from_labels,
    truncation_rank,
)
from repro.exceptions import ParameterError
from repro.metrics import max_abs_error
from repro.utility import KNNClassificationUtility


def test_truncation_rank():
    assert truncation_rank(3, 0.5) == 3
    assert truncation_rank(1, 0.1) == 10
    assert truncation_rank(5, 0.001) == 1000
    assert truncation_rank(5, 1.0) == 5
    assert truncation_rank(2, 0.3) == math.ceil(1 / 0.3)


def test_truncation_rank_rejects_bad_params():
    with pytest.raises(ParameterError):
        truncation_rank(0, 0.1)
    with pytest.raises(ParameterError):
        truncation_rank(3, 0.0)
    with pytest.raises(ParameterError):
        truncation_rank(3, -1.0)


@pytest.mark.parametrize("epsilon", [0.5, 0.2, 0.05, 0.01])
def test_error_bound_holds(medium_cls, epsilon):
    """The (epsilon, 0) guarantee: max error at most epsilon."""
    k = 3
    exact = exact_knn_shapley(medium_cls, k)
    approx = truncated_knn_shapley(medium_cls, k, epsilon)
    assert max_abs_error(approx.values, exact.values) <= epsilon + 1e-12


def test_per_test_error_bound(medium_cls):
    """The bound holds per test point, not just on the average."""
    k, epsilon = 2, 0.1
    exact = exact_knn_shapley(medium_cls, k)
    approx = truncated_knn_shapley(medium_cls, k, epsilon)
    err = np.abs(approx.extra["per_test"] - exact.extra["per_test"]).max()
    assert err <= epsilon + 1e-12


def test_differences_preserved_within_kstar(medium_cls):
    """s_hat_i - s_hat_{i+1} = s_i - s_{i+1} for ranks below K*."""
    k, epsilon = 2, 0.1
    k_star = truncation_rank(k, epsilon)
    exact = exact_knn_shapley(medium_cls, k)
    approx = truncated_knn_shapley(medium_cls, k, epsilon)
    utility = KNNClassificationUtility(medium_cls, k)
    for j in range(3):
        order = utility.order[j]
        e = exact.extra["per_test"][j][order]
        a = approx.extra["per_test"][j][order]
        exact_diffs = np.diff(e[: k_star - 1])
        approx_diffs = np.diff(a[: k_star - 1])
        np.testing.assert_allclose(approx_diffs, exact_diffs, atol=1e-12)


def test_zero_beyond_kstar(medium_cls):
    k, epsilon = 1, 0.2
    k_star = truncation_rank(k, epsilon)
    approx = truncated_knn_shapley(medium_cls, k, epsilon)
    utility = KNNClassificationUtility(medium_cls, k)
    for j in range(medium_cls.n_test):
        order = utility.order[j]
        tail = approx.extra["per_test"][j][order][k_star:]
        assert np.all(tail == 0.0)


def test_kstar_larger_than_n_equals_exact(tiny_cls):
    """When K* >= N the truncation degenerates to the exact values."""
    k = 2
    exact = exact_knn_shapley(tiny_cls, k)
    approx = truncated_knn_shapley(tiny_cls, k, epsilon=1e-6)
    np.testing.assert_allclose(approx.values, exact.values, atol=1e-12)


def test_values_from_labels_short_input():
    """Fewer labels than K* are tolerated (sparse LSH retrieval): the
    recursion anchors at zero beyond the available prefix, so the last
    supplied rank gets value 0 and earlier ranks follow the recursion."""
    labels = np.array([1, 0, 1])
    vals = truncated_values_from_labels(labels, 1, k=1, k_star=10, n_train=50)
    assert vals.shape == (3,)
    assert vals[2] == 0.0
    assert vals[1] == pytest.approx((0 - 1) / 1 * min(1, 2) / 2)
    assert vals[0] == pytest.approx(vals[1] + (1 - 0) / 1 * 1 / 1)


def test_values_from_labels_full_prefix_exact_anchor():
    """With all N labels and K* >= N, the values equal Theorem 1's."""
    from repro.core import knn_shapley_single_test

    labels = np.array([1, 0, 1, 1, 0])
    vals = truncated_values_from_labels(labels, 1, k=2, k_star=99, n_train=5)
    exact = knn_shapley_single_test(labels, 1, k=2)
    np.testing.assert_allclose(vals, exact, atol=1e-12)


def test_values_from_labels_empty():
    vals = truncated_values_from_labels(np.array([]), 1, k=1, k_star=5)
    assert vals.shape == (0,)


def test_ranking_preserved_in_head(medium_cls):
    """Theorem 2 preserves the K*-nearest ranking of values."""
    k, epsilon = 1, 0.1
    k_star = truncation_rank(k, epsilon)
    exact = exact_knn_shapley(medium_cls, k)
    approx = truncated_knn_shapley(medium_cls, k, epsilon)
    utility = KNNClassificationUtility(medium_cls, k)
    j = 0
    head = utility.order[j][: k_star - 1]
    e = exact.extra["per_test"][j][head]
    a = approx.extra["per_test"][j][head]
    np.testing.assert_array_equal(np.argsort(-e), np.argsort(-a))
