"""Tests for the weighted frontier: regression piecewise + streaming.

Three pillars.  (1) The O(N·poly(K)) regression piecewise path
(rank-only weights): agreement with the exhaustive 2^N oracle at tiny
N and with the configuration engine at serving-ish N.  (2) The
streaming configuration engine: colex block enumeration, bit-identity
with the materialized engine for K in {3, 4, 5} on both tasks, and
fixed-memory guarantees (blocks within budget; the materialized path
refuses past it with a typed error).  (3) The routing/observability
surface: the full mode x task x weight-kind selection table, the
typed capability error, and the bounded configuration-array cache.
"""

import itertools

import numpy as np
import pytest

from repro.core import get_kernel, shapley_by_subsets
from repro.core.kernels import (
    BatchedWeightedRecursion,
    RankPlan,
    _colex_combinations,
    _combination_array,
    iter_combination_blocks,
    materialized_config_bytes,
    weighted_config_cache_clear,
    weighted_config_cache_stats,
)
from repro.core.piecewise import (
    size_sum_closed_form,
    weighted_knn_regression_anchor,
    weighted_knn_regression_pair_totals,
)
from repro.core.weighted import exact_weighted_knn_shapley
from repro.datasets import gaussian_blobs, regression_dataset
from repro.exceptions import (
    KernelCapabilityError,
    MemoryBudgetError,
    ParameterError,
)
from repro.knn import argsort_by_distance
from repro.knn.weights import weight_position_table
from repro.utility import WeightedKNNRegressionUtility

ALL_WEIGHTS = ("uniform", "rank", "inverse_distance", "gaussian")


def _plan(data):
    order, dist = argsort_by_distance(data.x_test, data.x_train)
    return RankPlan.from_order(
        order,
        np.asarray(data.y_train, dtype=np.float64),
        data.y_test,
        distances=dist,
    )


@pytest.fixture(scope="module")
def cls_plan():
    return _plan(gaussian_blobs(n_train=13, n_test=2, n_features=4, seed=821))


@pytest.fixture(scope="module")
def reg_plan():
    return _plan(
        regression_dataset(n_train=13, n_test=2, n_features=4, seed=822)
    )


# ------------------------------------------------ colex block streaming
@pytest.mark.parametrize("r", [1, 2, 3, 4])
@pytest.mark.parametrize("block_rows", [3, 7, 64])
def test_streaming_blocks_concatenate_to_colex(r, block_rows):
    n = 11
    full = _colex_combinations(n, r)
    blocks = list(iter_combination_blocks(n, r, block_rows))
    np.testing.assert_array_equal(np.concatenate(blocks, axis=0), full)
    # fixed-size guarantee: every block is exactly block_rows except
    # (possibly) the last — the memory bound the streaming engine sells
    for b in blocks[:-1]:
        assert b.shape == (block_rows, r)
    assert 0 < blocks[-1].shape[0] <= block_rows


def test_streaming_blocks_edge_cases():
    # r == 0: the single empty coalition
    blocks = list(iter_combination_blocks(6, 0, 8))
    assert len(blocks) == 1 and blocks[0].shape == (1, 0)
    # n < r: nothing to enumerate
    assert list(iter_combination_blocks(3, 5, 8)) == []
    # exact multiple of block_rows: no ghost empty block
    blocks = list(iter_combination_blocks(4, 2, 3))  # C(4,2) = 6 = 2*3
    assert [b.shape[0] for b in blocks] == [3, 3]


# ------------------------------- streaming vs materialized bit-identity
@pytest.mark.parametrize("k", [3, 4, 5])
@pytest.mark.parametrize("weights", ALL_WEIGHTS)
@pytest.mark.parametrize("task", ["classification", "regression"])
def test_streaming_bit_identical_to_materialized(
    cls_plan, reg_plan, k, weights, task
):
    """Same colex order + same block boundaries => the same float adds
    in the same sequence: streaming must be bit-for-bit identical."""
    plan = cls_plan if task == "classification" else reg_plan
    kernel = get_kernel("weighted")
    mat = kernel.values_from_plan(
        plan, k, weights=weights, task=task, mode="vectorized"
    )
    stream = kernel.values_from_plan(
        plan, k, weights=weights, task=task, mode="streaming"
    )
    np.testing.assert_array_equal(stream, mat)


@pytest.mark.parametrize("block_rows", [5, 17])
def test_streaming_bit_identity_survives_odd_block_sizes(
    reg_plan, block_rows
):
    kernel = get_kernel("weighted")
    mat = kernel.values_from_plan(
        reg_plan,
        4,
        weights="gaussian",
        task="regression",
        mode="vectorized",
        block_rows=block_rows,
    )
    stream = kernel.values_from_plan(
        reg_plan,
        4,
        weights="gaussian",
        task="regression",
        mode="streaming",
        block_rows=block_rows,
    )
    np.testing.assert_array_equal(stream, mat)


# ------------------------------------------------- fixed-memory budget
def test_streaming_engine_memory_is_block_bounded():
    """The streaming engine's resident configuration bytes depend on
    block_rows, never on C(N-2, K-1)."""
    block_rows = 1 << 10
    eng = BatchedWeightedRecursion(500, 5, block_rows=block_rows, streaming=True)
    item = np.dtype(np.intp).itemsize
    budget = block_rows * max(1, 4) * item
    assert eng.config_bytes() <= budget
    # same engine shape at 4x the N: identical resident bytes
    eng2 = BatchedWeightedRecursion(
        2000, 5, block_rows=block_rows, streaming=True
    )
    assert eng2.config_bytes() == eng.config_bytes()
    # while the materialized estimate explodes combinatorially
    assert materialized_config_bytes(2000, 5) > 1 << 33


def test_materialized_refuses_past_budget():
    kernel = get_kernel("weighted")
    with pytest.raises(MemoryBudgetError) as exc:
        kernel.select_path(
            4,
            "inverse_distance",
            mode="vectorized",
            n_train=400,
            memory_budget_bytes=1 << 20,
        )
    assert exc.value.budget_bytes == 1 << 20
    assert exc.value.estimated_bytes > 1 << 20
    # auto degrades to streaming instead of refusing
    assert (
        kernel.select_path(
            4,
            "inverse_distance",
            n_train=400,
            memory_budget_bytes=1 << 20,
        )
        == "streaming"
    )
    # within budget, auto prefers the materialized engine
    assert (
        kernel.select_path(3, "inverse_distance", n_train=20) == "vectorized"
    )


def test_materialized_config_bytes_is_exact_int():
    # exact Python-int arithmetic: no float rounding at serving scale
    est = materialized_config_bytes(2000, 5)
    assert isinstance(est, int)
    item = np.dtype(np.intp).itemsize
    # dominated by the size-(K-1) block: C(1998, 4) rows of width 4
    import math

    assert est >= math.comb(1998, 4) * 4 * item
    assert materialized_config_bytes(1, 3) == 0


# ----------------------------------------- regression piecewise: values
@pytest.mark.parametrize("weights", ["uniform", "rank"])
@pytest.mark.parametrize("k", [2, 3])
def test_regression_piecewise_matches_brute_force(tiny_reg, weights, k):
    utility = WeightedKNNRegressionUtility(tiny_reg, k, weights=weights)
    oracle = shapley_by_subsets(utility)
    fast = exact_weighted_knn_shapley(
        tiny_reg, k, weights=weights, task="regression", mode="piecewise"
    )
    np.testing.assert_allclose(fast.values, oracle.values, atol=1e-10)
    assert fast.extra["weighted_path"] == "piecewise"


@pytest.mark.parametrize("k", [2, 3])
def test_regression_piecewise_matches_reference(reg_plan, k):
    kernel = get_kernel("weighted")
    ref = kernel.values_from_plan(
        reg_plan, k, weights="rank", task="regression", mode="reference"
    )
    fast = kernel.values_from_plan(
        reg_plan, k, weights="rank", task="regression", mode="piecewise"
    )
    assert np.max(np.abs(fast - ref)) <= 1e-12


def test_regression_piecewise_matches_configuration_engine_at_scale():
    """N ~ 300: far beyond the oracle, still cheap for the K=2
    configuration engine — the two independent implementations must
    agree to 1e-12."""
    data = regression_dataset(n_train=300, n_test=2, n_features=5, seed=823)
    plan = _plan(data)
    kernel = get_kernel("weighted")
    engine = kernel.values_from_plan(
        plan, 2, weights="rank", task="regression", mode="vectorized"
    )
    fast = kernel.values_from_plan(
        plan, 2, weights="rank", task="regression", mode="piecewise"
    )
    assert np.max(np.abs(fast - engine)) <= 1e-12


def test_regression_piecewise_efficiency_axiom():
    """Sum of values = v(D) - v(empty) for every test point (exactness
    sanity independent of any second implementation)."""
    data = regression_dataset(n_train=60, n_test=3, n_features=4, seed=824)
    plan = _plan(data)
    k = 3
    table = weight_position_table("rank", k)
    kernel = get_kernel("weighted")
    per_test = kernel.values_from_plan(
        plan, k, weights="rank", task="regression", mode="piecewise"
    )
    y_sorted = np.asarray(plan.labels_sorted, dtype=np.float64)
    for j, t in enumerate(np.asarray(plan.y_test, dtype=np.float64)):
        pred_full = float(table[k - 1, :k] @ y_sorted[j, :k])
        grand = -((pred_full - t) ** 2) + t**2  # v(D) - v(empty)
        assert per_test[j].sum() == pytest.approx(grand, abs=1e-10)


def test_size_sum_closed_form_theorem1_identity():
    """C(i-1, a) * SB(N-i-1, a) must telescope to (N-1)/i — the
    Beta-integral identity the pair sweep is built on."""
    import math

    n = 40
    for i in (1, 5, 17, 39):
        m = n - i - 1
        for a in range(i):
            term = math.comb(i - 1, a) * size_sum_closed_form(n, m, a)
            assert term == pytest.approx((n - 1) / i, rel=1e-12)


def test_regression_pair_totals_and_anchor_validate_inputs():
    table = weight_position_table("rank", 2)
    with pytest.raises(ParameterError):
        weighted_knn_regression_pair_totals(
            5, 2, table[:1], np.zeros(5), 0.0
        )
    with pytest.raises(ParameterError):
        weighted_knn_regression_anchor(5, 2, table, np.zeros(4), 0.0)


# --------------------------------------------------- the routing table
def _expected_route(mode, task, weights, rank_only):
    if mode == "reference":
        return "reference"
    if mode == "streaming":
        return "streaming"
    if mode == "vectorized":
        return "vectorized"
    if mode == "piecewise":
        return "piecewise" if rank_only else KernelCapabilityError
    # auto at k=2, small n: piecewise when capable, else materialized
    return "piecewise" if rank_only else "vectorized"


@pytest.mark.parametrize(
    "mode, task, weights",
    list(
        itertools.product(
            ("auto", "reference", "vectorized", "streaming", "piecewise"),
            ("classification", "regression"),
            ALL_WEIGHTS,
        )
    ),
)
def test_select_path_routing_table(mode, task, weights):
    """The full mode x task x weight-kind table, in one place."""
    kernel = get_kernel("weighted")
    rank_only = weights in ("uniform", "rank")
    expected = _expected_route(mode, task, weights, rank_only)
    if expected is KernelCapabilityError:
        with pytest.raises(KernelCapabilityError) as exc:
            kernel.select_path(2, weights, task=task, mode=mode, n_train=20)
        assert exc.value.capability == "rank_only"
    else:
        assert (
            kernel.select_path(2, weights, task=task, mode=mode, n_train=20)
            == expected
        )


def test_capability_error_is_parameter_error():
    """Typed but backwards compatible: existing except ParameterError
    clauses keep working."""
    kernel = get_kernel("weighted")
    with pytest.raises(ParameterError):
        kernel.select_path(2, "gaussian", mode="piecewise")


# --------------------------------------------- bounded config-array cache
def test_config_cache_counts_and_evicts(monkeypatch):
    from repro.core import kernels as kmod

    weighted_config_cache_clear()
    base = weighted_config_cache_stats()
    assert base["entries"] == 0 and base["bytes"] == 0

    a1 = _combination_array(10, 3)
    assert not a1.flags.writeable  # shared arrays are read-only
    stats = weighted_config_cache_stats()
    assert stats["misses"] >= 1 and stats["entries"] >= 1
    a2 = _combination_array(10, 3)
    assert a2 is a1  # served from cache
    assert weighted_config_cache_stats()["hits"] >= 1

    # shrink the cap so the next array fits alone but not alongside the
    # resident one: admitting it must evict FIFO, values unchanged
    import math

    b_bytes = math.comb(11, 3) * 3 * np.dtype(np.intp).itemsize
    monkeypatch.setattr(kmod, "WEIGHTED_CONFIG_CACHE_BYTES", b_bytes + 8)
    b = _combination_array(11, 3)
    np.testing.assert_array_equal(b, _colex_combinations(11, 3))
    stats = weighted_config_cache_stats()
    assert stats["evictions"] >= 1
    assert stats["bytes"] <= b_bytes + 8

    # an array larger than the whole cap is served uncached
    monkeypatch.setattr(kmod, "WEIGHTED_CONFIG_CACHE_BYTES", 8)
    before = weighted_config_cache_stats()["entries"]
    c = _combination_array(12, 3)
    np.testing.assert_array_equal(c, _colex_combinations(12, 3))
    after = weighted_config_cache_stats()
    assert after["oversize"] >= 1 and after["entries"] <= before

    weighted_config_cache_clear()
    monkeypatch.undo()


def test_engine_stats_surface_config_cache():
    from repro.engine import ValuationEngine

    data = gaussian_blobs(n_train=12, n_test=2, n_features=4, seed=825)
    engine = ValuationEngine(data.x_train, data.y_train, 3)
    engine.value(
        data.x_test, data.y_test, method="weighted", weights="gaussian"
    )
    stats = engine.stats()
    cache = stats["weighted_config_cache"]
    assert {"hits", "misses", "evictions", "bytes", "entries"} <= set(cache)
