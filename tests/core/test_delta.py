"""Tests for the rank-local delta updates (repro.core.delta).

Every delta function is checked against the reference Theorem 1
recursion run from scratch on the mutated ranking: the suffix must be
*bit-identical*, the shifted prefix within a rounding.
"""

import numpy as np
import pytest

from repro.core.delta import (
    insert_rank_values,
    insertion_position,
    removal_position,
    remove_rank_values,
    suffix_rank_values,
)
from repro.core.exact import knn_shapley_single_test
from repro.exceptions import ParameterError


def _full(match, k):
    """Reference rank-space values via the Theorem 1 recursion."""
    labels = np.asarray(match, dtype=np.int64)
    return knn_shapley_single_test(labels, 1, k)


# ------------------------------------------------------------ positions
def test_insertion_position_ties_go_right():
    dist = np.array([0.5, 1.0, 1.0, 2.0])
    # the new point has the largest training index, so among equal
    # distances it ranks last
    assert insertion_position(dist, 1.0) == 3
    assert insertion_position(dist, 0.1) == 0
    assert insertion_position(dist, 3.0) == 4


def test_removal_position_finds_unique_entry():
    order = np.array([4, 2, 0, 3, 1])
    assert removal_position(order, 3) == 3
    with pytest.raises(ParameterError):
        removal_position(order, 9)  # absent
    with pytest.raises(ParameterError):
        removal_position(np.array([1, 1, 2]), 1)  # duplicated


# --------------------------------------------------------------- suffix
@pytest.mark.parametrize("k", [1, 3, 10, 40])
def test_suffix_matches_full_recursion_bitwise(rng, k):
    match = (rng.random(30) < 0.4).astype(np.float64)
    full = _full(match, k)
    for start in (0, 1, 7, 28, 29):
        np.testing.assert_array_equal(
            suffix_rank_values(match, start, k), full[start:]
        )


def test_suffix_single_point():
    np.testing.assert_array_equal(
        suffix_rank_values(np.array([1.0]), 0, 2), _full([1.0], 2)
    )


def test_suffix_validates_inputs():
    with pytest.raises(ParameterError):
        suffix_rank_values(np.array([1.0, 0.0]), 2, 3)
    with pytest.raises(ParameterError):
        suffix_rank_values(np.array([1.0, 0.0]), 0, 0)


# --------------------------------------------------------------- insert
@pytest.mark.parametrize("k", [1, 2, 5, 25])
@pytest.mark.parametrize("n", [1, 2, 3, 20])
def test_insert_matches_full_recursion_everywhere(rng, k, n):
    match = (rng.random(n) < 0.5).astype(np.float64)
    s_old = _full(match, k)
    for pos in range(n + 1):
        for m_new in (0.0, 1.0):
            grown = np.insert(match, pos, m_new)
            got = insert_rank_values(s_old, grown, pos, k)
            want = _full(grown, k)
            # recomputed suffix: bit-identical to a from-scratch run
            np.testing.assert_array_equal(got[pos:], want[pos:])
            # boundary + shifted prefix: within a rounding
            np.testing.assert_allclose(got, want, rtol=0, atol=1e-15)


def test_insert_validates_shapes():
    with pytest.raises(ParameterError):
        insert_rank_values(np.zeros(3), np.zeros(3), 0, 2)
    with pytest.raises(ParameterError):
        insert_rank_values(np.zeros(3), np.zeros(4), 5, 2)


# --------------------------------------------------------------- remove
@pytest.mark.parametrize("k", [1, 2, 5, 25])
@pytest.mark.parametrize("n", [2, 3, 4, 20])
def test_remove_matches_full_recursion_everywhere(rng, k, n):
    match = (rng.random(n) < 0.5).astype(np.float64)
    s_old = _full(match, k)
    for pos in range(n):
        shrunk = np.delete(match, pos)
        got = remove_rank_values(s_old, shrunk, pos, k)
        want = _full(shrunk, k)
        start = min(pos, n - 2)  # the recomputed suffix: bit-identical
        np.testing.assert_array_equal(got[start:], want[start:])
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-15)


def test_remove_validates_shapes():
    with pytest.raises(ParameterError):
        remove_rank_values(np.zeros(1), np.zeros(0), 0, 2)
    with pytest.raises(ParameterError):
        remove_rank_values(np.zeros(3), np.zeros(3), 0, 2)
    with pytest.raises(ParameterError):
        remove_rank_values(np.zeros(3), np.zeros(2), 4, 2)


# ----------------------------------------------------------- round trip
@pytest.mark.parametrize("k", [1, 3, 7])
def test_insert_then_remove_suffix_is_bit_exact(rng, k):
    """The delta pair restores the suffix bit-for-bit, prefix to ~1 ulp."""
    match = (rng.random(50) < 0.5).astype(np.float64)
    s0 = _full(match, k)
    for pos in (0, 13, 50):
        grown = np.insert(match, pos, 1.0)
        s1 = insert_rank_values(s0, grown, pos, k)
        s2 = remove_rank_values(s1, match, pos, k)
        np.testing.assert_array_equal(s2[pos:], s0[pos:])
        np.testing.assert_allclose(s2, s0, rtol=0, atol=1e-16)


def test_many_random_mutations_stay_exact(rng):
    """A churn sequence of 60 random inserts/removes tracks the
    reference recursion to well under the 1e-12 acceptance bound."""
    k = 5
    match = (rng.random(40) < 0.5).astype(np.float64)
    s = _full(match, k)
    for _ in range(60):
        if match.size > 2 and rng.random() < 0.5:
            pos = int(rng.integers(0, match.size))
            match = np.delete(match, pos)
            s = remove_rank_values(s, match, pos, k)
        else:
            pos = int(rng.integers(0, match.size + 1))
            match = np.insert(match, pos, float(rng.integers(0, 2)))
            s = insert_rank_values(s, match, pos, k)
        np.testing.assert_allclose(s, _full(match, k), rtol=0, atol=1e-13)
