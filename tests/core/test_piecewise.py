"""Tests for the piecewise utility-difference framework (Appendix F)."""

import math

import numpy as np
import pytest

from repro.core import (
    chain_values_from_differences,
    exact_knn_shapley,
    knn_group_count,
    knn_group_weight_closed_form,
    shapley_difference_from_groups,
)
from repro.exceptions import ParameterError
from repro.utility import KNNClassificationUtility


@pytest.mark.parametrize("n", [5, 8, 12])
@pytest.mark.parametrize("k", [1, 2, 4])
def test_binomial_identity(n, k):
    """The counting sum equals the closed form min(K,i)(N-1)/i (eq 13)."""
    for i in range(1, n):
        counted = sum(
            knn_group_count(n, i, k, size) / math.comb(n - 2, size)
            for size in range(n - 1)
        )
        closed = knn_group_weight_closed_form(n, i, k)
        assert counted == pytest.approx(closed)


def test_group_counts_total():
    """Summing the live-group counts over m recovers all subsets when
    K is large (every coalition is live)."""
    n, i = 8, 4
    big_k = n  # every coalition has fewer than K nearer members
    for size in range(n - 1):
        assert knn_group_count(n, i, big_k, size) == math.comb(n - 2, size)


def test_shapley_difference_reproduces_theorem1(tiny_cls):
    """Appendix F machinery + KNN group counts = Theorem 1 differences."""
    k = 2
    utility = KNNClassificationUtility(tiny_cls, k)
    exact = exact_knn_shapley(tiny_cls, k)
    j = 0
    order = utility.order[j]
    per_test = exact.extra["per_test"][j][order]
    n = tiny_cls.n_train
    match = (tiny_cls.y_train[order] == tiny_cls.y_test[j]).astype(float)
    for i in range(1, n):  # 1-based rank
        c1 = (match[i - 1] - match[i]) / k
        diff = shapley_difference_from_groups(
            n,
            [c1],
            [lambda size, i=i: knn_group_count(n, i, k, size)],
        )
        assert diff == pytest.approx(per_test[i - 1] - per_test[i], abs=1e-12)


def test_chain_values_roundtrip():
    values = np.array([0.5, 0.2, -0.1, 0.05])
    diffs = values[:-1] - values[1:]
    rebuilt = chain_values_from_differences(values[-1], diffs)
    np.testing.assert_allclose(rebuilt, values)


def test_chain_single_value():
    rebuilt = chain_values_from_differences(0.3, np.array([]))
    np.testing.assert_allclose(rebuilt, [0.3])


def test_validation():
    with pytest.raises(ParameterError):
        shapley_difference_from_groups(1, [1.0], [lambda k: 1])
    with pytest.raises(ParameterError):
        shapley_difference_from_groups(5, [1.0, 2.0], [lambda k: 1])
    with pytest.raises(ParameterError):
        knn_group_count(5, 0, 2, 1)
    with pytest.raises(ParameterError):
        knn_group_weight_closed_form(5, 5, 2)
