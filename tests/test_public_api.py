"""Sanity checks on the public API surface."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.engine",
        "repro.knn",
        "repro.lsh",
        "repro.utility",
        "repro.market",
        "repro.models",
        "repro.datasets",
        "repro.metrics",
        "repro.valuation",
        "repro.experiments",
    ],
)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    assert mod.__all__, f"{module} exports nothing"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name} missing"


def test_exception_hierarchy():
    from repro.exceptions import (
        ConvergenceError,
        DataValidationError,
        NotFittedError,
        ParameterError,
        ReproError,
        UtilityError,
    )

    for exc in (
        DataValidationError,
        ParameterError,
        NotFittedError,
        ConvergenceError,
        UtilityError,
    ):
        assert issubclass(exc, ReproError)
    # value-style errors also subclass ValueError for idiomatic catches
    assert issubclass(DataValidationError, ValueError)
    assert issubclass(ParameterError, ValueError)
    assert issubclass(NotFittedError, RuntimeError)


def test_docstrings_on_public_callables():
    """Every public item of the core packages carries a docstring."""
    import typing

    for module in (
        "repro.core",
        "repro.engine",
        "repro.knn",
        "repro.lsh",
        "repro.valuation",
    ):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            obj = getattr(mod, name)
            if isinstance(obj, type) or (
                callable(obj) and not isinstance(obj, typing._GenericAlias)
            ):
                assert obj.__doc__, f"{module}.{name} lacks a docstring"
