"""Tests for the seeding helpers."""

import numpy as np

from repro.rng import ensure_rng, spawn


def test_ensure_rng_from_int():
    a = ensure_rng(42)
    b = ensure_rng(42)
    assert a.integers(0, 100) == b.integers(0, 100)


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(7)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_children_independent_and_reproducible():
    parent_a = ensure_rng(5)
    parent_b = ensure_rng(5)
    kids_a = spawn(parent_a, 3)
    kids_b = spawn(parent_b, 3)
    for ka, kb in zip(kids_a, kids_b):
        assert ka.integers(0, 10**9) == kb.integers(0, 10**9)
    # distinct children produce distinct streams
    draws = {k.integers(0, 10**9) for k in spawn(ensure_rng(6), 4)}
    assert len(draws) > 1
