"""The docs layer stays healthy: links resolve, anchors exist."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _load_checker():
    path = REPO_ROOT / "docs" / "check_links.py"
    spec = importlib.util.spec_from_file_location("check_links", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_exist_and_readme_links_them():
    readme = (REPO_ROOT / "README.md").read_text()
    for doc in ("docs/ARCHITECTURE.md", "docs/OPERATIONS.md"):
        assert (REPO_ROOT / doc).exists(), f"{doc} is missing"
        assert doc in readme, f"README does not link {doc}"


def test_all_markdown_links_resolve():
    checker = _load_checker()
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    problems = []
    for path in files:
        problems.extend(checker.check_file(path))
    assert problems == []


def test_slugify_matches_github_conventions():
    checker = _load_checker()
    assert checker.slugify("Degraded mode and timeouts") == (
        "degraded-mode-and-timeouts"
    )
    assert checker.slugify("The `weighted` kernel, K >= 2") == (
        "the-weighted-kernel-k--2"
    )
