"""Tests for the KNN classification utility (eqs 5, 8)."""

import numpy as np
import pytest

from repro.exceptions import UtilityError
from repro.knn import KNNClassifier
from repro.utility import KNNClassificationUtility, coalition_to_indices


def test_empty_value_is_zero(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    assert utility.empty_value() == 0.0


def test_grand_value_matches_classifier(tiny_cls):
    """v(I) equals the average correct-label likelihood of the trained KNN."""
    k = 3
    utility = KNNClassificationUtility(tiny_cls, k)
    clf = KNNClassifier(k=k).fit(tiny_cls.x_train, tiny_cls.y_train)
    expected = float(
        np.mean(clf.likelihood_of(tiny_cls.x_test, tiny_cls.y_test))
    )
    assert utility.grand_value() == pytest.approx(expected)


def test_partial_coalition_divides_by_k(tiny_cls):
    """For |S| < K the utility still divides by K (the paper's convention)."""
    k = 5
    utility = KNNClassificationUtility(tiny_cls, k)
    # a singleton coalition scores match/K per test point
    for i in range(3):
        val = utility([i])
        matches = np.mean(
            (tiny_cls.y_train[i] == np.asarray(tiny_cls.y_test)).astype(float)
        )
        assert val == pytest.approx(matches / k)


def test_monotone_in_k_nearest_only(tiny_cls):
    """Adding a far point to a full coalition leaves the value unchanged
    unless it enters someone's top K."""
    k = 1
    utility = KNNClassificationUtility(tiny_cls, k)
    order = utility.order
    # coalition = everyone's nearest neighbor for every test point
    nearest = np.unique(order[:, 0])
    farthest = order[0, -1]
    if farthest not in nearest:
        base = utility(nearest)
        with_far = utility(np.append(nearest, farthest))
        assert with_far == pytest.approx(base)


def test_marginal_definition(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    s = [0, 3, 5]
    m = utility.marginal(s, 1)
    assert m == pytest.approx(utility([0, 1, 3, 5]) - utility(s))


def test_marginal_rejects_member(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    with pytest.raises(UtilityError):
        utility.marginal([0, 1], 1)


def test_coalition_validation(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    with pytest.raises(UtilityError):
        utility([0, 0])
    with pytest.raises(UtilityError):
        utility([tiny_cls.n_train])
    with pytest.raises(UtilityError):
        utility([-1])


def test_boolean_mask_coalitions(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    mask = np.zeros(tiny_cls.n_train, dtype=bool)
    mask[[1, 4]] = True
    assert utility(mask) == pytest.approx(utility([1, 4]))


def test_coalition_to_indices_set():
    idx = coalition_to_indices({3, 1}, 5)
    np.testing.assert_array_equal(idx, [1, 3])


def test_difference_range_is_one_over_k(tiny_cls):
    for k in (1, 2, 5):
        utility = KNNClassificationUtility(tiny_cls, k)
        assert utility.difference_range() == pytest.approx(1.0 / k)


def test_value_bounds(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 2)
    assert utility.value_bounds() == (0.0, 1.0)
    # exhaustive check that the bounds hold
    from repro.core import all_subset_values

    v = all_subset_values(utility)
    assert v.min() >= 0.0 and v.max() <= 1.0


def test_per_test_value_averages_to_call(tiny_cls):
    utility = KNNClassificationUtility(tiny_cls, 3)
    members = np.array([0, 2, 4, 6])
    per = [
        utility.per_test_value(members, j) for j in range(tiny_cls.n_test)
    ]
    assert np.mean(per) == pytest.approx(utility(members))
