"""Tests for regression, weighted, grouped and composite utilities."""

import numpy as np
import pytest

from repro.utility import (
    CompositeUtility,
    GroupedUtility,
    KNNClassificationUtility,
    KNNRegressionUtility,
    WeightedKNNClassificationUtility,
    WeightedKNNRegressionUtility,
)


# ----------------------------------------------------------------------
# regression utility (eq 25)
# ----------------------------------------------------------------------
def test_regression_empty_value(tiny_reg):
    utility = KNNRegressionUtility(tiny_reg, 2)
    expected = -float(np.mean(np.asarray(tiny_reg.y_test) ** 2))
    assert utility.empty_value() == pytest.approx(expected)


def test_regression_divides_by_k(tiny_reg):
    """Singleton coalition: prediction y_i / K (not y_i)."""
    k = 4
    utility = KNNRegressionUtility(tiny_reg, k)
    i = 0
    pred = float(tiny_reg.y_train[i]) / k
    expected = -float(
        np.mean((pred - np.asarray(tiny_reg.y_test)) ** 2)
    )
    assert utility([i]) == pytest.approx(expected)


def test_regression_value_bounds_hold(tiny_reg):
    from repro.core import all_subset_values

    utility = KNNRegressionUtility(tiny_reg, 2)
    lo, hi = utility.value_bounds()
    v = all_subset_values(utility)
    assert v.min() >= lo - 1e-12
    assert v.max() <= hi + 1e-12


def test_regression_perfect_coalition():
    """A coalition of K points whose mean is exactly y_test scores 0."""
    from repro.types import Dataset

    x = np.array([[0.0], [0.2], [5.0]])
    y = np.array([1.0, 3.0, 100.0])
    data = Dataset(x, y, np.array([[0.1]]), np.array([2.0]))
    utility = KNNRegressionUtility(data, 2)
    assert utility([0, 1]) == pytest.approx(0.0)


# ----------------------------------------------------------------------
# weighted utilities (eqs 26, 27)
# ----------------------------------------------------------------------
def test_weighted_classification_in_unit_interval(tiny_cls):
    from repro.core import all_subset_values

    utility = WeightedKNNClassificationUtility(
        tiny_cls, 2, weights="inverse_distance"
    )
    v = all_subset_values(utility)
    assert v.min() >= 0.0 and v.max() <= 1.0


def test_weighted_with_uniform_equals_unweighted_on_full_coalitions(tiny_cls):
    k = 3
    weighted = WeightedKNNClassificationUtility(tiny_cls, k, weights="uniform")
    unweighted = KNNClassificationUtility(tiny_cls, k)
    full = np.arange(tiny_cls.n_train)
    assert weighted(full) == pytest.approx(unweighted(full))
    # any coalition of size >= k agrees too
    assert weighted([0, 1, 2, 3]) == pytest.approx(unweighted([0, 1, 2, 3]))


def test_weighted_regression_empty(tiny_reg):
    utility = WeightedKNNRegressionUtility(
        tiny_reg, 2, weights="inverse_distance"
    )
    expected = -float(np.mean(np.asarray(tiny_reg.y_test) ** 2))
    assert utility.empty_value() == pytest.approx(expected)


# ----------------------------------------------------------------------
# grouped utility
# ----------------------------------------------------------------------
def test_grouped_evaluates_union(tiny_cls, tiny_grouped):
    base = KNNClassificationUtility(tiny_cls, 2)
    gu = GroupedUtility(base, tiny_grouped)
    sellers = np.array([0, 2])
    points = np.sort(
        np.concatenate(
            [tiny_grouped.members(0), tiny_grouped.members(2)]
        )
    )
    assert gu(sellers) == pytest.approx(base(points))


def test_grouped_grand_equals_base_grand(tiny_cls, tiny_grouped):
    base = KNNClassificationUtility(tiny_cls, 2)
    gu = GroupedUtility(base, tiny_grouped)
    assert gu.grand_value() == pytest.approx(base.grand_value())


def test_grouped_n_players(tiny_grouped):
    base = KNNClassificationUtility(tiny_grouped.dataset, 1)
    gu = GroupedUtility(base, tiny_grouped)
    assert gu.n_players == tiny_grouped.n_sellers


# ----------------------------------------------------------------------
# composite utility (eq 28)
# ----------------------------------------------------------------------
def test_composite_zero_without_analyst(tiny_cls):
    base = KNNClassificationUtility(tiny_cls, 2)
    cu = CompositeUtility(base)
    assert cu([0, 1, 2]) == 0.0  # sellers only
    assert cu([cu.analyst]) == 0.0  # analyst only
    assert cu([]) == 0.0


def test_composite_with_analyst_equals_base(tiny_cls):
    base = KNNClassificationUtility(tiny_cls, 2)
    cu = CompositeUtility(base)
    sellers = [0, 3, 5]
    assert cu(sellers + [cu.analyst]) == pytest.approx(base(sellers))


def test_composite_grand(tiny_cls):
    base = KNNClassificationUtility(tiny_cls, 2)
    cu = CompositeUtility(base)
    assert cu.grand_value() == pytest.approx(base.grand_value())
    assert cu.n_players == base.n_players + 1
