"""KNN Shapley values as a proxy for other models (Section 7, Figure 16).

Valuing data for a parametric model is expensive: every utility
evaluation retrains the model, and even Monte Carlo needs thousands of
evaluations.  The paper proposes using the *KNN* Shapley value on the
model's feature space as a surrogate — calibrating K so the KNN mimics
the target model's accuracy.  This example runs that pipeline against
a from-scratch logistic regression and reports the correlation, the
Figure 16 claim.

Run:  python examples/surrogate_for_deep_models.py
"""

from __future__ import annotations

import time


from repro.core import baseline_mc_shapley
from repro.datasets import iris_like
from repro.metrics import pearson_correlation, spearman_correlation, top_k_overlap
from repro.models import LogisticRegression, RetrainUtility
from repro.valuation import surrogate_values

SEED = 5


def main() -> None:
    # 15% label noise keeps the utility non-saturated: on clean
    # iris-like data every model is near-perfect, marginal
    # contributions are ~0, and both value vectors are dominated by
    # noise.  With some mislabeled points the two models agree on who
    # is harmful, which is the Figure 16 effect.
    clean = iris_like(n_train=36, n_test=30, seed=1)
    from repro.datasets import inject_label_noise

    data, _ = inject_label_noise(clean, 0.15, seed=1)

    # ---- the "expensive" ground truth: MC over retraining ------------
    def factory() -> LogisticRegression:
        return LogisticRegression(learning_rate=0.3, max_iter=150, seed=0)

    target = factory().fit(data.x_train, data.y_train)
    target_acc = target.score(data.x_test, data.y_test)
    print(f"logistic regression test accuracy: {target_acc:.3f}")

    utility = RetrainUtility(data, factory, fallback=1.0 / 3.0)
    t0 = time.perf_counter()
    lr_result = baseline_mc_shapley(utility, n_permutations=300, seed=1)
    lr_seconds = time.perf_counter() - t0
    print(
        f"MC logistic-regression values: {utility.n_evaluations} model "
        f"retrainings, {lr_seconds:.1f}s"
    )

    # ---- the cheap surrogate: calibrated KNN Shapley ------------------
    t0 = time.perf_counter()
    knn_result, calibration = surrogate_values(data, target_acc)
    knn_seconds = time.perf_counter() - t0
    print(
        f"KNN surrogate: calibrated K={calibration.k} "
        f"(KNN acc {calibration.knn_accuracy:.3f}, gap "
        f"{calibration.accuracy_gap:.3f}), {knn_seconds:.3f}s"
    )

    # ---- how good is the proxy? ---------------------------------------
    pear = pearson_correlation(knn_result.values, lr_result.values)
    spear = spearman_correlation(knn_result.values, lr_result.values)
    overlap = top_k_overlap(knn_result.values, lr_result.values, 10)
    speedup = lr_seconds / max(knn_seconds, 1e-9)
    print(f"\npearson correlation:  {pear:.3f}")
    print(f"spearman correlation: {spear:.3f}")
    print(f"top-10 overlap:       {overlap:.0%}")
    print(f"speedup:              {speedup:,.0f}x")
    print(
        "\nas in Figure 16: the cheap KNN values track the expensive "
        "model-specific values well enough for data selection."
    )


if __name__ == "__main__":
    main()
