"""Weighted KNN *regression* valuation, served by a sharded tier.

The weighted kernel closes the regression frontier (eq 27): rank-only
weight functions now take the O(N·poly(K)) piecewise label-moment
path — exact, serving-scale — instead of the combinatorial
configuration engine.  This example drives it end to end:

1. a 3-shard data-mode `ShardRouter` over a regression training set
   serves `method="weighted"` with rank weights; the kernel routes to
   the **piecewise** path (asserted via `extra["weighted_path"]`) and
   the merged values bit-match a single engine;
2. distance-based (gaussian) weights take the configuration engine;
   forcing `mode="streaming"` evaluates the same sums from fixed-size
   colex blocks — bit-identical values, `O(block_rows·K)` resident
   configuration memory;
3. the path counters and the shared configuration-array cache are
   read back from `stats()`.

Run:  python examples/weighted_regression.py
"""

import numpy as np

from repro.core.kernels import weighted_config_cache_stats
from repro.datasets import regression_dataset
from repro.engine import ShardRouter, ValuationEngine

SEED = 31
N_SELLERS = 1200
N_QUERIES = 8
N_FEATURES = 12
K = 2
N_SHARDS = 3


def main() -> None:
    data = regression_dataset(
        n_train=N_SELLERS, n_test=N_QUERIES, n_features=N_FEATURES, seed=SEED
    )

    # --- piecewise regression through the sharded tier ---------------
    router = ShardRouter(
        data.x_train,
        data.y_train,
        K,
        n_shards=N_SHARDS,
        sharding="data",
        task="regression",
    )
    single = ValuationEngine(
        data.x_train, data.y_train, K, task="regression"
    )
    routed = router.value(
        data.x_test, data.y_test, method="weighted", weights="rank"
    )
    direct = single.value(
        data.x_test, data.y_test, method="weighted", weights="rank"
    )
    assert routed.extra["weighted_path"] == "piecewise"
    assert direct.extra["weighted_path"] == "piecewise"
    err = np.max(np.abs(routed.values - direct.values))
    print(
        f"regression, rank weights, N={N_SELLERS}, K={K}: "
        f'path={routed.extra["weighted_path"]!r}, '
        f"router vs single engine max |diff| = {err:g}"
    )
    assert err <= 1e-12
    top = int(np.argmax(direct.values))
    print(
        f"most valuable seller: #{top} "
        f"(value {direct.values[top]:+.6f} per test average)"
    )

    # --- streaming engine: same sums, fixed configuration memory -----
    small = regression_dataset(
        n_train=300, n_test=4, n_features=N_FEATURES, seed=SEED + 1
    )
    engine = ValuationEngine(small.x_train, small.y_train, K, task="regression")
    vectorized = engine.value(
        small.x_test,
        small.y_test,
        method="weighted",
        weights="gaussian",
        mode="vectorized",
    )
    streaming = engine.value(
        small.x_test,
        small.y_test,
        method="weighted",
        weights="gaussian",
        mode="streaming",
    )
    assert vectorized.extra["weighted_path"] == "vectorized"
    assert streaming.extra["weighted_path"] == "streaming"
    assert np.array_equal(vectorized.values, streaming.values)
    print(
        "\ngaussian weights, N=300: streaming vs materialized engine "
        "bit-identical (same colex order, same block boundaries)"
    )

    # --- observability: path counters + the shared config cache ------
    counters = engine.stats()["counters"]
    print("\nengine path counters:")
    for name in sorted(counters):
        if name.startswith("weighted_path_"):
            print(f"  {name}: {counters[name]}")
    cache = weighted_config_cache_stats()
    print(
        f"config-array cache: {cache['entries']} entries, "
        f"{cache['bytes']} bytes resident "
        f"({cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['evictions']} evictions)"
    )
    router.close()


if __name__ == "__main__":
    main()
