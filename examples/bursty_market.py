"""A bursty data market riding out a slow shard on the precision ladder.

The chaos-smoke walkthrough: a sharded valuation tier serves a data
market whose buyers all show up at once — while one shard is slow.
Nothing is mocked; the fault is injected into the live router and the
degradation is real:

1. eight sellers contribute slices of the training set; a 4-shard
   data-mode `ShardRouter` partitions their points;
2. a `ValuationService` with a `DegradationController` fronts the
   router; `FaultInjector` makes one shard slow, a burst of buyer
   query batches piles up, and the service sheds *precision* instead
   of requests — Theorem-2 truncations and, under deeper pressure,
   the Theorem-5 Monte Carlo rung, every answer carrying its error
   certificate in `extra["degraded"]`;
3. the fault clears, the queue drains, and the next request serves
   exact and unmarked — the recovery rule;
4. the market settles on the exact values: per-seller payouts from
   the final grand-coalition valuation.

Run:  python examples/bursty_market.py
"""

import numpy as np

from repro.datasets import gaussian_blobs
from repro.engine import (
    DegradationController,
    ShardRouter,
    ValuationRequest,
    ValuationService,
)
from repro.market import Seller
from repro.monitor import FaultInjector, TelemetryHub

SEED = 41
N_TRAIN = 8000
N_SELLERS = 8
N_FEATURES = 8
K = 5
N_SHARDS = 4
BURST = 12
QUERIES_PER_BUYER = 8
SLOW_SECONDS = 0.05


def main() -> None:
    data = gaussian_blobs(
        n_train=N_TRAIN,
        n_test=BURST * QUERIES_PER_BUYER,
        n_features=N_FEATURES,
        seed=SEED,
    )
    sellers = [
        Seller(seller_id=i, point_indices=idx)
        for i, idx in enumerate(
            np.array_split(np.arange(N_TRAIN, dtype=np.intp), N_SELLERS)
        )
    ]
    batches = [
        (
            data.x_test[i * QUERIES_PER_BUYER : (i + 1) * QUERIES_PER_BUYER],
            data.y_test[i * QUERIES_PER_BUYER : (i + 1) * QUERIES_PER_BUYER],
        )
        for i in range(BURST)
    ]

    hub = TelemetryHub()
    router = ShardRouter(
        data.x_train,
        data.y_train,
        K,
        n_shards=N_SHARDS,
        sharding="data",
        hub=hub,
    )
    controller = DegradationController(queue_low=0, queue_high=BURST)
    print(
        f"market: {N_SELLERS} sellers x {N_TRAIN // N_SELLERS} points, "
        f"{N_SHARDS} shards, {BURST} buyers bursting "
        f"{QUERIES_PER_BUYER} queries each"
    )

    with ValuationService(
        router, n_workers=1, degradation=controller
    ) as service:
        # --- the burst, with one shard injected slow -----------------
        with FaultInjector() as chaos:
            chaos.slow_shard(router, N_SHARDS - 1, SLOW_SECONDS)
            jobs = [
                service.submit(
                    ValuationRequest(bx, by, tag=f"buyer-{i}")
                )
                for i, (bx, by) in enumerate(batches)
            ]
            results = [job.result(timeout=600) for job in jobs]
        # fault cleared here: every FaultInjector patch is undone

        degraded = [r for r in results if "degraded" in r.extra]
        print(
            f"\nburst served: {len(results)} requests, "
            f"{len(degraded)} degraded, rung picks "
            f"{controller.snapshot()['picks']}"
        )
        assert degraded, "the slow shard never pressured the ladder"
        for r in degraded:
            cert = r.extra["degraded"]["certificate"]
            assert cert["epsilon"] > 0, cert
        sample = degraded[-1].extra["degraded"]
        print(
            f"sample degraded answer: rung={sample['rung']} "
            f"certificate: |error| <= {sample['certificate']['epsilon']:g} "
            f"({sample['certificate']['bound']})"
        )
        print("every degraded answer carries an error certificate: OK")

        # --- recovery: the queue is idle, the fault is gone ----------
        bx, by = batches[0]
        calm = service.submit(ValuationRequest(bx, by)).result(timeout=600)
        assert "degraded" not in calm.extra, calm.extra
        assert calm.method == "exact"
        print("post-fault request served exact and unmarked: OK")

        # --- settle the market on the exact values -------------------
        payouts = {
            s.name: float(np.sum(calm.values[s.point_indices]))
            for s in sellers
        }
        total = sum(payouts.values()) or 1.0
        print("\nseller shares of the exact grand-coalition value:")
        for name, value in sorted(
            payouts.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {name:>10s}: {100 * value / total:6.2f}%")

    shed = hub.counter("service.jobs_shed")
    print(f"\nrequests shed: {shed} (precision was shed instead)")
    print("chaos smoke: all assertions passed")


if __name__ == "__main__":
    main()
