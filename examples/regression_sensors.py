"""Valuing sensor readings for a KNN regressor (Theorem 6).

A building-analytics scenario: temperature sensors contribute labelled
readings; the buyer trains a KNN regressor that predicts energy
consumption at new operating points.  The negative-MSE utility of
eq (25) prices every reading — noisy sensors get low or negative
values, and the exact O(N log N) algorithm makes this cheap.

Run:  python examples/regression_sensors.py
"""

from __future__ import annotations

import numpy as np

from repro import KNNShapleyValuator
from repro.datasets import regression_dataset
from repro.types import Dataset

SEED = 11
N_READINGS = 1500
N_NOISY = 150


def main() -> None:
    clean = regression_dataset(
        n_train=N_READINGS,
        n_test=80,
        n_features=6,
        noise=0.05,
        name="sensors",
        seed=SEED,
    )

    # One faulty sensor: a block of readings with heavy label noise.
    rng = np.random.default_rng(SEED)
    y = np.array(clean.y_train, copy=True)
    faulty = rng.choice(N_READINGS, size=N_NOISY, replace=False)
    y[faulty] += rng.normal(0.0, 2.0, size=N_NOISY)
    data = Dataset(clean.x_train, y, clean.x_test, clean.y_test)

    valuator = KNNShapleyValuator(data, k=5, task="regression")
    result = valuator.exact()

    print(f"{N_READINGS} readings, {N_NOISY} from a faulty sensor")
    print(f"total value = v(I) - v(empty) = {result.total():.4f}")

    faulty_mean = result.values[faulty].mean()
    good = np.setdiff1d(np.arange(N_READINGS), faulty)
    good_mean = result.values[good].mean()
    print(f"mean value of faulty readings: {faulty_mean:+.6f}")
    print(f"mean value of good readings:   {good_mean:+.6f}")

    bottom = np.argsort(result.values)[:N_NOISY]
    recall = np.isin(bottom, faulty).mean()
    print(
        f"bottom-{N_NOISY} by value: {recall:.0%} are faulty "
        f"(base rate {N_NOISY / N_READINGS:.0%})"
    )

    # Repairing the dataset: drop the lowest-valued decile and compare
    # regressor quality.
    from repro.knn import KNNRegressor

    keep = np.argsort(result.values)[N_READINGS // 10 :]
    before = KNNRegressor(k=5).fit(data.x_train, data.y_train)
    after = KNNRegressor(k=5).fit(
        data.x_train[keep], np.asarray(data.y_train)[keep]
    )
    print(
        f"\ntest MSE with all readings:      "
        f"{before.mse(data.x_test, data.y_test):.4f}"
    )
    print(
        f"test MSE after dropping bottom decile: "
        f"{after.mse(data.x_test, data.y_test):.4f}"
    )


if __name__ == "__main__":
    main()
