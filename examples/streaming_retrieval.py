"""Streaming document-retrieval valuation with LSH (Section 3.2's motivation).

In retrieval systems, queries (test points) arrive one at a time and
each training point's value must be *accumulated on the fly* — so the
full offline sort behind the exact algorithm is off the table.  This
example builds the LSH index once, then streams queries through it,
updating a running value estimate per training point with the
truncated recursion (Theorems 2 + 4), and compares the final stream
state against the exact batch computation.

Run:  python examples/streaming_retrieval.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import exact_knn_shapley
from repro.core.truncated import truncated_values_from_labels, truncation_rank
from repro.datasets import mnist_deep_like
from repro.lsh import LSHIndex, normalize_to_unit_dmean, tune_lsh
from repro.metrics import max_abs_error, pearson_correlation

SEED = 3
K = 1
EPSILON = 0.1
DELTA = 0.1


def main() -> None:
    data = mnist_deep_like(n_train=20_000, n_test=50, seed=SEED)
    k_star = truncation_rank(K, EPSILON)
    print(f"corpus: {data.n_train} documents; eps={EPSILON} -> K*={k_star}")

    # ---- offline phase: build the index once -------------------------
    x_train, x_test, contrast = normalize_to_unit_dmean(
        data.x_train, data.x_test, k=k_star, seed=SEED
    )
    params = tune_lsh(
        contrast, n=data.n_train, k_star=k_star, delta=DELTA, alpha=0.5
    )
    t0 = time.perf_counter()
    index = LSHIndex(
        n_tables=params.n_tables,
        n_bits=params.n_bits,
        width=params.width,
        seed=SEED,
    ).build(x_train)
    build_s = time.perf_counter() - t0
    print(
        f"index: {params.n_tables} tables x {params.n_bits} bits, "
        f"width {params.width}, g(C)={params.g:.2f}, built in {build_s:.2f}s"
    )

    # ---- online phase: stream the queries ----------------------------
    running = np.zeros(data.n_train)
    t0 = time.perf_counter()
    for j in range(data.n_test):
        idx_j, _, _ = index.query(x_test[j : j + 1], k_star)
        neighbors = idx_j[0]
        if neighbors.size == 0:
            continue
        vals = truncated_values_from_labels(
            data.y_train[neighbors],
            data.y_test[j],
            K,
            k_star,
            n_train=data.n_train,
        )
        running[neighbors] += vals
    stream_s = time.perf_counter() - t0
    streamed = running / data.n_test
    print(
        f"streamed {data.n_test} queries in {stream_s:.2f}s "
        f"({stream_s / data.n_test * 1e3:.1f} ms/query)"
    )

    # ---- compare against the exact batch run -------------------------
    t0 = time.perf_counter()
    exact = exact_knn_shapley(data, K)
    exact_s = time.perf_counter() - t0
    err = max_abs_error(streamed, exact.values)
    corr = pearson_correlation(streamed, exact.values)
    print(f"exact batch run: {exact_s:.2f}s")
    print(
        f"stream vs exact: max error {err:.4f} (guarantee {EPSILON}), "
        f"correlation {corr:.3f}"
    )


if __name__ == "__main__":
    main()
