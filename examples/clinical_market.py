"""The paper's motivating scenario: a clinical data marketplace.

Patients (sellers) contribute medical records; a buyer pays for a KNN
diagnostic model trained on the pooled records; a hospital analytics
lab (the analyst) contributes computation.  The marketplace values
every contribution with the exact Shapley algorithms and settles the
buyer's payment:

* per-patient values via Theorem 8 (each patient owns several visits);
* the analyst's share via the composite game (Theorem 12);
* money via the affine revenue model of Section 7.

Run:  python examples/clinical_market.py
"""

from __future__ import annotations


from repro.datasets import assign_sellers, gaussian_blobs
from repro.market import (
    AffineRevenueModel,
    Analyst,
    Buyer,
    Marketplace,
)

SEED = 7
N_PATIENTS = 12
N_RECORDS = 60  # total "visits" across all patients


def main() -> None:
    # Synthetic cohort: each record is a feature vector (labs, vitals,
    # imaging embedding) with a binary outcome label.
    records = gaussian_blobs(
        n_train=N_RECORDS,
        n_test=20,
        n_classes=2,
        n_features=24,
        separation=2.5,
        name="clinical-cohort",
        seed=SEED,
    )
    cohort = assign_sellers(records, N_PATIENTS, seed=SEED)

    buyer = Buyer(budget=10_000.0, name="insurer")
    analyst = Analyst(name="hospital-lab", metadata={"hw": "GPU cluster"})
    market = Marketplace(
        dataset=records,
        k=3,
        grouped=cohort,
        analyst=analyst,
        revenue_model=AffineRevenueModel(a=1.0, b=0.0),
    )

    report = market.settle(buyer)
    print(f"model utility on the buyer's test set: {report.grand_utility:.3f}")
    print(f"budget distributed: ${report.ledger.budget:,.0f}\n")

    print(f"{'patient':<12}{'records':>8}{'value':>12}{'payment':>12}")
    values = report.valuation.values
    for seller in report.sellers:
        v = values[seller.seller_id]
        pay = report.seller_payment(seller.seller_id)
        print(
            f"{seller.name:<12}{seller.n_points:>8}"
            f"{v:>12.5f}{pay:>12.2f}"
        )
    print(
        f"{'analyst':<12}{'-':>8}{values[-1]:>12.5f}"
        f"{report.analyst_payment():>12.2f}"
    )

    share = report.analyst_payment() / report.ledger.budget
    print(
        f"\nthe analyst keeps {share:.0%} of the budget — the composite "
        "game provably grants computation at least half of the total "
        "utility (eqs 88-89)"
    )

    # Patients whose records actively hurt the model:
    flagged = market.flag_low_value_sellers(quantile=0.2)
    print(f"patients flagged for data-quality review: {flagged.tolist()}")


if __name__ == "__main__":
    main()
