"""The live operations plane over a valuation deployment, end to end.

A deployment is only operable if someone can answer *is it healthy,
what is broken, and where is the time going* without attaching a
debugger.  This example wires the whole `repro.monitor` ops plane over
a traced `ValuationService` and drives every piece:

1. a `TelemetryHub` + `Tracer` instrument the engine and service (the
   same wiring as `examples/traced_service.py`);
2. an `SLOTracker` holds declarative objectives over the hub's
   streams (`engine.request_seconds p99 < 250ms`, a p50 objective,
   and a job-failure error budget) with SRE multi-window burn-rate
   policies;
3. an `AlertManager` evaluates the SLOs plus threshold/counter rules,
   dedups while firing, and fans transitions out to a JSONL log sink
   and a callback sink;
4. a `SamplingProfiler` samples every thread at 19 Hz, and span-based
   phase attribution splits a request's wall time across
   facade/engine/chunk/kernel/backend from its trace tree;
5. an `ObservabilityServer` exposes it all over HTTP — `/metrics`,
   `/health`, `/ready`, `/slo`, `/alerts`, `/profile` — fetched here
   in-process with urllib;
6. an induced latency regression pushes the burn rate over the
   critical policy (fired through an injected clock so the 5m/1h
   windows pass in microseconds), and recovery resolves it.

Run:  python examples/ops_plane.py
CI:   python examples/ops_plane.py --serve 10 &  then curl /metrics …

`--port N` fixes the HTTP port (default: ephemeral); `--serve SECONDS`
keeps the server up after the demo so an external client can scrape.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
import urllib.request

from repro.datasets import gaussian_blobs
from repro.engine import ValuationEngine, ValuationService
from repro.monitor import (
    AlertManager,
    ObservabilityServer,
    SamplingProfiler,
    SLOTracker,
    TelemetryHub,
    ThresholdRule,
    TraceLog,
    Tracer,
    phase_attribution,
    router_rules,
)

SEED = 13
N_SELLERS = 2000
N_QUERIES = 32
N_FEATURES = 10
K = 5


def fetch(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read()


def induce_and_resolve_burn(
    hub: TelemetryHub,
    slo: SLOTracker,
    alerts: AlertManager,
    offset: list,
) -> None:
    """Fire the burn-rate alert on the *live* tracker, then resolve it.

    The 5m/1h SRE windows would take an hour of wall time to traverse;
    the tracker's injectable clock (here ``time.monotonic() + offset``)
    walks them in microseconds, which is exactly how the tests drive
    it.  The stream is a dedicated demo series so the induced
    regression does not pollute the engine SLOs — but it fires through
    the same manager the ``/alerts`` endpoint serves.
    """
    slo.add("demo latency", "demo.latency p99 < 50ms")
    timeline = []
    alerts.add_sink(
        lambda p: timeline.append(f"  +{offset[0]:>6.0f}s  {p['name']} -> {p['state']}")
    )

    def advance(seconds: float, n: int, value: float) -> None:
        for _ in range(10):
            offset[0] += seconds / 10.0
            for _ in range(max(1, n // 10)):
                hub.record("demo.latency", value)
            slo.tick()

    advance(600.0, 1000, 0.001)  # healthy baseline: 1 ms requests
    alerts.evaluate()
    advance(300.0, 500, 0.5)  # regression: 500 ms, every request bad
    fired = alerts.evaluate()
    assert any(t["state"] == "firing" for t in fired), "burn alert did not fire"
    advance(3600.0, 20000, 0.001)  # recovery drains both windows
    resolved = alerts.evaluate()
    assert any(t["state"] == "resolved" for t in resolved), "alert did not resolve"
    print("\n".join(timeline))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=0, help="HTTP port (0 = ephemeral)")
    parser.add_argument(
        "--serve",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the HTTP server up this long after the demo (for curl)",
    )
    args = parser.parse_args()

    data = gaussian_blobs(
        n_train=N_SELLERS, n_test=N_QUERIES, n_features=N_FEATURES, seed=SEED
    )

    # --- instrument: hub + tracer on the engine, service on top ------
    hub = TelemetryHub()
    tracer = Tracer(log=TraceLog(capacity=4096), hub=hub)
    engine = (
        ValuationEngine(data.x_train, data.y_train, K, n_workers=1)
        .attach_telemetry(hub)
        .attach_tracer(tracer)
    )

    # --- declare the SLOs and alert rules ----------------------------
    # the offsettable clock lets the demo traverse the burn windows
    # without sleeping; offset stays 0 while real traffic is served
    offset = [0.0]
    slo = SLOTracker(hub, clock=lambda: time.monotonic() + offset[0])
    slo.add("request latency p99", "engine.request_seconds p99 < 250ms")
    slo.add("request latency p50", "engine.request_seconds p50 < 100ms")
    slo.add("job failures", "service.jobs_failed / service.jobs_done < 1%")
    alert_log = os.path.join(tempfile.mkdtemp(), "alerts.jsonl")
    alerts = AlertManager(
        hub,
        rules=[
            ThresholdRule(
                "queue backlog",
                series="service.queue_seconds",
                stat="p99",
                op=">",
                value=5.0,
            ),
            *router_rules(),
        ],
        slo=slo,
    )
    alerts.log_to(alert_log)

    profiler = SamplingProfiler(hz=19.0)

    with ValuationService(engine, n_workers=2) as service:
        server = ObservabilityServer(
            target=service,
            hub=hub,
            slo=slo,
            alerts=alerts,
            profiler=profiler,
            port=args.port,
        ).start()
        print(f"ops plane: K={K}, {N_SELLERS} sellers, serving {server.url}")
        print(f"alert log: {alert_log}\n")

        # --- serve traffic with the profiler running -----------------
        with profiler:
            jobs = [
                service.submit_batch(data.x_test, data.y_test, tag=f"c{i}")
                for i in range(6)
            ]
            results = [job.result(timeout=60) for job in jobs]
            direct = engine.value(data.x_test, data.y_test, method="exact")
            # keep serving until the 19 Hz profiler has caught samples
            deadline = time.monotonic() + 5.0
            while profiler.snapshot(top=0)["samples"] < 5:
                engine.value(data.x_test, data.y_test, method="exact")
                if time.monotonic() > deadline:
                    break
        slo.tick()

        # --- SLO report over real traffic ----------------------------
        print("--- SLO report (healthy traffic) ---")
        for status in slo.evaluate():
            print(
                f"  {status['name']:<22} {status['objective']:<46} "
                f"attainment {status['attainment']:.4f}  "
                f"budget left {status['budget_remaining'] * 100:6.1f}%  "
                f"{'FIRING' if status['firing'] else 'ok'}"
            )
        assert not alerts.evaluate(), "healthy traffic must not fire alerts"

        # --- per-phase wall-time attribution from the trace tree -----
        attribution = phase_attribution(direct.extra["trace"])
        root_seconds = direct.extra["trace"]["seconds"]
        print("\n--- where one request's time went (span attribution) ---")
        for phase, row in attribution["phases"].items():
            print(
                f"  {phase:<8} {row['seconds'] * 1e3:8.2f} ms  "
                f"{row['fraction'] * 100:5.1f}%"
            )
        drift = abs(attribution["total_seconds"] - root_seconds) / root_seconds
        assert drift < 0.10, f"attribution drifted {drift:.1%} from the root span"

        # --- profiler: collapsed stacks ------------------------------
        print("\n--- hottest profiled frames ---")
        for row in profiler.top(3):
            print(
                f"  {row['frame']:<42} self {row['self']:>4}  "
                f"total {row['total']:>4}"
            )

        # --- the HTTP surface, fetched in-process --------------------
        print("\n--- HTTP endpoints ---")
        for path in ("/metrics", "/health", "/ready", "/slo", "/alerts", "/profile"):
            status, body = fetch(server.url + path)
            assert status == 200, f"{path} returned {status}"
            print(f"  GET {path:<9} {status}  {len(body):>6} bytes")
        slo_doc = json.loads(fetch(server.url + "/slo")[1])
        assert not any(s["firing"] for s in slo_doc["slos"])

        # --- induce a latency regression, watch it fire + resolve ----
        print("\n--- induced burn: regression fires, recovery resolves ---")
        induce_and_resolve_burn(hub, slo, alerts, offset)

        # the full cycle is on the HTTP surface the demo just drove
        alerts_doc = json.loads(fetch(server.url + "/alerts")[1])
        states = [(h["name"], h["state"]) for h in alerts_doc["history"]]
        assert ("slo.demo latency", "firing") in states
        assert ("slo.demo latency", "resolved") in states
        print(f"\n/alerts history: {len(states)} transitions recorded")

        if args.serve > 0:
            print(f"\nserving {server.url} for {args.serve:.0f}s …")
            time.sleep(args.serve)
        server.stop()

    assert all(len(r.values) == N_SELLERS for r in results)
    # the JSONL sink recorded exactly the demo's fire/resolve cycle
    with open(alert_log) as fh:
        logged = [json.loads(line) for line in fh if line.strip()]
    assert [entry["state"] for entry in logged] == ["firing", "resolved"]
    print("\nops plane demo complete: SLOs green, alert cycle exercised.")


if __name__ == "__main__":
    main()
