"""A traced, shared-telemetry valuation deployment, end to end.

Serving a valuation crosses many layers — facade, engine, chunk
workers, kernel, neighbor backend, rank cache — and `repro.monitor`
makes every request tell you where its time went:

1. one `TelemetryHub` aggregates two engine shards through
   `hub.labeled("shard0")` / `hub.labeled("shard1")` views, so one
   export endpoint covers the whole tier;
2. a `Tracer` (span log on disk as JSONL, durations streamed into the
   hub) is attached to both shards; every engine-served request then
   carries its full span tree in `result.extra["trace"]`;
3. a 2-worker `ValuationService` executes jobs on background threads
   that *join the submitting client's trace* via the `TraceContext`
   carried on each request;
4. the hub renders the tier as a Prometheus text exposition and a JSON
   snapshot, and the span log replays with
   `python -m repro.monitor.dump <file>`.

Run:  python examples/traced_service.py
"""

import json
import os
import tempfile

import numpy as np

from repro.datasets import gaussian_blobs
from repro.engine import ValuationEngine, ValuationService
from repro.monitor import TelemetryHub, TraceLog, Tracer
from repro.monitor.dump import format_trace, group_traces, load_spans

SEED = 13
N_SELLERS = 2000
N_QUERIES = 32
N_FEATURES = 10
K = 5


def render_tree(span: dict, depth: int = 0) -> None:
    """Print one request's span tree from ``result.extra["trace"]``."""
    pad = "  " * depth
    attrs = {
        k: v
        for k, v in span["attributes"].items()
        if k in ("method", "cache", "weighted_path", "k_star")
    }
    extra = f"  {attrs}" if attrs else ""
    print(f"{pad}- {span['name']}  {span['seconds'] * 1e3:.2f} ms{extra}")
    for child in span["children"]:
        render_tree(child, depth + 1)


def main() -> None:
    data = gaussian_blobs(
        n_train=N_SELLERS, n_test=N_QUERIES, n_features=N_FEATURES, seed=SEED
    )
    trace_path = os.path.join(tempfile.mkdtemp(), "trace.jsonl")

    # one hub for the tier, one tracer for the request paths
    hub = TelemetryHub()
    log = TraceLog(capacity=4096, path=trace_path)
    tracer = Tracer(log=log, hub=hub)
    shards = [
        ValuationEngine(data.x_train, data.y_train, K)
        .attach_telemetry(hub.labeled(f"shard{i}"))
        .attach_tracer(tracer)
        for i in range(2)
    ]
    print(f"tier: 2 engine shards, K={K}, {N_SELLERS} sellers each")
    print(f"span log: {trace_path}\n")

    # --- one traced request, tree inline on the result ---------------
    result = shards[0].value(data.x_test, data.y_test, method="exact")
    print("--- span tree of one exact request (cold cache) ---")
    render_tree(result.extra["trace"])
    repeat = shards[0].value(data.x_test, data.y_test, method="exact")
    print("\n--- the repeat request serves from the rank cache ---")
    render_tree(repeat.extra["trace"])

    # --- a service whose worker threads join the client's trace ------
    with ValuationService(shards[1], n_workers=2) as service:
        with tracer.span("client.batch", n_jobs=4) as client:
            jobs = [
                service.submit_batch(data.x_test, data.y_test, tag=f"c{i}")
                for i in range(4)
            ]
        for job in jobs:
            job.result(timeout=60)
        stats = service.stats()
    print(
        f"\nservice: {stats['n_jobs']} jobs on 2 workers, "
        f"compute p50 {stats['timings']['compute_p50'] * 1e3:.2f} ms, "
        f"p99 {stats['timings']['compute_p99'] * 1e3:.2f} ms"
    )
    batch_spans = log.records(trace_id=client.trace_id)
    job_spans = [s for s in batch_spans if s["name"] == "service.job"]
    print(
        f"client trace {client.trace_id}: {len(batch_spans)} spans, "
        f"{len(job_spans)} service jobs joined it from worker threads"
    )

    # --- the shared hub exports the whole tier -----------------------
    print("\n--- Prometheus exposition (excerpt) ---")
    for line in hub.export_text().splitlines():
        if "shard" in line and "request_seconds" in line and "bucket" not in line:
            print(line)
    snapshot = hub.export_json()
    tracked = sorted(snapshot["series"])
    print(f"\nJSON snapshot: {len(tracked)} series tracked, e.g. {tracked[:3]}")
    p99 = hub.percentile("span.engine.request.seconds", 99)
    print(f"engine.request p99 across both shards: {p99 * 1e3:.2f} ms")
    assert json.dumps(snapshot)  # the snapshot is JSON-clean by contract

    # --- replay the span log the way the CLI does --------------------
    log.close()
    spans = load_spans(trace_path)
    traces = group_traces(spans)
    print(f"\nspan log: {len(spans)} spans across {len(traces)} traces")
    print(format_trace(client.trace_id, traces[client.trace_id]))
    print(f"\ninspect any time with: python -m repro.monitor.dump {trace_path}")

    values = np.asarray(result.values)
    assert np.allclose(values, repeat.values)  # tracing never changes values


if __name__ == "__main__":
    main()
