"""A data market with churning sellers, valued incrementally.

The paper's marketplace (Section 4) splits revenue by Shapley value —
but real seller pools churn: new sellers join with fresh data, stale
sellers leave.  Every membership event changes *everyone's* value, and
re-running the full valuation per event costs a distance pass plus a
sort per test point.

This example keeps a `repro.engine.IncrementalValuator` fitted over the
buyer's query workload and repairs it in place per event:

* a join is one distance per query, a binary search, and a suffix
  re-run of the Theorem 1 recursion (`repro.core.delta`);
* a departure is the same repair in reverse;
* payouts are re-read from the maintained state after every event.

After the churn sequence, the maintained values are compared against a
from-scratch valuation of the final pool: they agree to ~1e-15, at a
fraction of the per-event cost.

Run:  python examples/dynamic_market.py
"""

import time

import numpy as np

from repro.core.exact import exact_knn_shapley
from repro.datasets import gaussian_blobs
from repro.engine import IncrementalValuator
from repro.types import Dataset

SEED = 11
N_SELLERS = 8000
N_QUERIES = 96
N_FEATURES = 64
K = 5
N_EVENTS = 12


def main() -> None:
    rng = np.random.default_rng(SEED)
    data = gaussian_blobs(
        n_train=N_SELLERS,
        n_test=N_QUERIES,
        n_features=N_FEATURES,
        n_classes=3,
        seed=SEED,
    )

    print(
        f"market: {N_SELLERS} sellers, {N_QUERIES} buyer queries, "
        f"K={K}, d={N_FEATURES}"
    )
    valuator = IncrementalValuator(data.x_train, data.y_train, K)
    start = time.perf_counter()
    valuator.fit(data.x_test, data.y_test)
    print(f"initial fit (one full ranking): {time.perf_counter() - start:.3f}s\n")

    x_pool = data.x_train.copy()
    y_pool = data.y_train.copy()
    event_seconds = []
    print(f"{'event':<28s} {'sellers':>8s} {'repair_s':>9s} {'top seller value':>17s}")
    for step in range(N_EVENTS):
        if step % 3 == 2:
            # a random seller leaves the market
            leaver = int(rng.integers(0, valuator.n_train))
            start = time.perf_counter()
            valuator.remove_points([leaver])
            values = valuator.values().values
            elapsed = time.perf_counter() - start
            x_pool = np.delete(x_pool, [leaver], axis=0)
            y_pool = np.delete(y_pool, [leaver])
            label = f"seller #{leaver} leaves"
        else:
            # a new seller joins with one fresh labelled point
            x_new = rng.standard_normal((1, N_FEATURES))
            y_new = rng.integers(0, 3, 1)
            start = time.perf_counter()
            idx = valuator.add_points(x_new, y_new)
            values = valuator.values().values
            elapsed = time.perf_counter() - start
            x_pool = np.vstack((x_pool, x_new))
            y_pool = np.concatenate((y_pool, y_new))
            label = f"seller #{int(idx[0])} joins"
        event_seconds.append(elapsed)
        print(
            f"{label:<28s} {valuator.n_train:>8d} {elapsed:>9.4f} "
            f"{values.max():>17.6f}"
        )

    # audit the maintained ledger against a from-scratch valuation
    start = time.perf_counter()
    audit = exact_knn_shapley(
        Dataset(x_pool, y_pool, data.x_test, data.y_test), K
    )
    full_s = time.perf_counter() - start
    maintained = valuator.values().values
    err = float(np.abs(maintained - audit.values).max())
    mean_event = sum(event_seconds) / len(event_seconds)
    print(f"\nfull recompute of the final pool: {full_s:.3f}s")
    print(f"mean per-event repair:            {mean_event:.4f}s "
          f"({full_s / mean_event:.1f}x faster)")
    print(f"max |maintained - recomputed|:    {err:.2e}")
    assert err < 1e-12
    # the canonical resync agrees bit-for-bit with the audit
    assert np.array_equal(valuator.recompute().values, audit.values)
    print("ledger bit-identical after resync: True")


if __name__ == "__main__":
    main()
