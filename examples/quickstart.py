"""Quickstart: value a training set for a KNN classifier in four lines.

Generates a synthetic deep-feature dataset, computes the exact Shapley
value of every training point (Theorem 1 — O(N log N), not O(2^N)),
and shows what the values are good for: ranking points, spotting
harmful ones, and checking the group-rationality accounting.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import KNNShapleyValuator
from repro.datasets import gaussian_blobs, inject_label_noise

SEED = 0


def main() -> None:
    # 1. Data: 2000 training points, 50 test points, 32-d features —
    #    with 10% of training labels deliberately flipped.
    clean = gaussian_blobs(
        n_train=2000,
        n_test=50,
        n_classes=3,
        n_features=32,
        separation=3.0,
        seed=SEED,
    )
    data, flipped = inject_label_noise(clean, fraction=0.10, seed=SEED)

    # 2. Value every training point, exactly.
    valuator = KNNShapleyValuator(data, k=5)
    result = valuator.exact()

    print(f"dataset: {data.n_train} train / {data.n_test} test points")
    print(f"method:  {result.method}")
    print(f"sum of values  = {result.total():.4f}")
    print(f"utility  v(I)  = {valuator.utility().grand_value():.4f}")
    print("(equal, by group rationality)\n")

    # 3. The ranking is meaningful: flipped labels sink to the bottom.
    order = np.argsort(result.values)
    bottom_200 = order[:200]
    frac_flipped = np.isin(bottom_200, flipped).mean()
    print(
        f"bottom-200 points by value: {frac_flipped:.0%} are mislabeled "
        f"(base rate {len(flipped) / data.n_train:.0%})"
    )

    # 4. Approximations, when N gets large:
    truncated = valuator.truncated(epsilon=0.01)
    err = np.max(np.abs(truncated.values - result.values))
    print(
        f"\ntruncated approximation (eps=0.01, K*="
        f"{truncated.extra['k_star']}): max error {err:.2e}"
    )

    mc = valuator.monte_carlo(epsilon=0.1, delta=0.1, seed=SEED)
    err_mc = np.max(np.abs(mc.values - result.values))
    print(
        f"improved MC (Bennett budget, "
        f"{mc.extra['n_permutations']} permutations): max error {err_mc:.2e}"
    )


if __name__ == "__main__":
    main()
