"""A long-lived LSH valuation service that keeps itself tuned.

The paper's sublinear path (Theorems 3-4) leans on LSH parameters
derived from a one-shot relative-contrast estimate (Section 6.1).  A
deployment that serves for months keeps that tuning while its seller
pool churns — and once the data distribution shifts, the stale width
and table count quietly destroy recall.

This example runs the whole monitoring loop from `repro.monitor`:

1. an engine serves LSH valuations while a `MaintenanceScheduler`
   streams telemetry (latency, candidate counts, a query reservoir);
2. the market migrates: every seller is replaced, in in-band batches,
   by one from a much wider distribution — `n` never changes, so the
   legacy size-drift refit would never fire, yet the index goes stale;
3. the drift detectors flag it (contrast re-estimated on the
   reservoir, candidate collapse, recall spot check), one background
   cycle re-tunes, and the recall proxy recovers to fresh-tune level —
   with zero RuntimeWarnings and serving never interrupted.

Run:  python examples/self_tuning_service.py
"""

import warnings

import numpy as np

from repro.engine import ValuationEngine
from repro.knn.search import top_k
from repro.monitor import MaintenanceScheduler

SEED = 7
N_SELLERS = 3000
N_QUERIES = 48
N_FEATURES = 12
K = 5
SHIFT_SCALE = 6.0
MIGRATE_BATCHES = 5


def recall_proxy(backend, queries: np.ndarray, k: int) -> float:
    """Fraction of true top-k neighbors the live index retrieves."""
    true_idx, _ = top_k(queries, backend.data, k)
    got_idx, _ = backend.spot_query(queries, k)
    hits = sum(
        int(np.isin(true_idx[j], got_idx[j]).sum())
        for j in range(true_idx.shape[0])
    )
    return hits / float(true_idx.size)


def main() -> None:
    rng = np.random.default_rng(SEED)
    x = rng.standard_normal((N_SELLERS, N_FEATURES))
    y = rng.integers(0, 2, N_SELLERS)

    engine = ValuationEngine(
        x, y, K, backend="lsh", backend_options={"seed": SEED}
    )
    scheduler = MaintenanceScheduler(engine=engine, interval=3600.0)
    hub = scheduler.hub
    print(f"service: {N_SELLERS} sellers, LSH backend, K={K}, d={N_FEATURES}")

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any RuntimeWarning aborts the demo

        q = rng.standard_normal((N_QUERIES, N_FEATURES))
        result = engine.value(q, rng.integers(0, 2, N_QUERIES), method="lsh")
        backend = engine.backend
        print(
            f"tuned: width={backend.params.width}, "
            f"m={backend.params.n_bits}, l={backend.params.n_tables}, "
            f"mean candidates {result.extra['mean_candidates']:.0f}"
        )
        print(f"idle maintenance cycle: {scheduler.run_once()!r}\n")

        print("--- the market migrates (constant n, wider distribution) ---")
        batch = N_SELLERS // MIGRATE_BATCHES
        for step in range(MIGRATE_BATCHES):
            x_new = rng.standard_normal((batch, N_FEATURES)) * SHIFT_SCALE
            engine.add_points(x_new, rng.integers(0, 2, batch))
            engine.remove_points(np.arange(batch))  # oldest sellers leave
            q_new = rng.standard_normal((16, N_FEATURES)) * SHIFT_SCALE
            engine.value(q_new, rng.integers(0, 2, 16), method="lsh")
            counters = backend.stats()["counters"]
            print(
                f"batch {step + 1}/{MIGRATE_BATCHES}: "
                f"{counters['inserts_in_place']} in-place inserts, "
                f"tombstone ratio {backend.tombstone_ratio:.2f}, "
                f"deferred refits {counters['deferred_refits']}"
            )

        eval_q = rng.standard_normal((64, N_FEATURES)) * SHIFT_SCALE
        k_built = backend.built_k
        degraded = recall_proxy(backend, eval_q, k_built)
        print(f"\nrecall proxy on live traffic, stale tuning: {degraded:.3f}")

        events = scheduler.run_once()
        for event in events:
            kinds = ", ".join(sorted({s.kind for s in event.signals}))
            print(
                f"maintenance: {event.action} in {event.seconds:.3f}s "
                f"(signals: {kinds})"
            )
        recovered = recall_proxy(backend, eval_q, k_built)
        print(f"recall proxy after background re-tune:      {recovered:.3f}")
        print(
            f"re-tuned: width={backend.params.width}, "
            f"m={backend.params.n_bits}, l={backend.params.n_tables}"
        )

    assert recovered > degraded
    print(
        f"\ntelemetry: {hub.counter('backend.lsh.queries')} queries "
        f"streamed, contrast drift last measured "
        f"{hub.last('backend.lsh.contrast_drift'):.2f}, "
        f"recall series {np.round(hub.series('backend.lsh.recall_proxy'), 3)}"
    )
    print("maintenance log:", [e.action for e in scheduler.log])


if __name__ == "__main__":
    main()
