"""A sharded valuation tier behind one service, one hub, one tracer.

`ShardRouter` puts a coordinator in front of four `ValuationEngine`
shards and serves the *same surface* as a single engine — so the
service, telemetry, tracing, and maintenance layers all compose with
it unchanged:

1. a 4-shard data-mode router partitions the training set; each
   request fans out, per-shard results merge *exactly* (the values
   bit-match a single engine over the full set);
2. one `TelemetryHub` aggregates the fleet — shard `i` publishes
   through the router's `hub.labeled("shard<i>")` view, the router
   adds its own `router.*` streams;
3. a traced request yields one tree: `router.request` at the root,
   one `shard.request` child per fan-out leg;
4. an unmodified `ValuationService` fronts the router, queueing
   valuations and mutations; mutations route to their owning shard
   while the global index space stays identical to a single engine's.

Run:  python examples/sharded_service.py
"""

import numpy as np

from repro.datasets import gaussian_blobs
from repro.engine import ShardRouter, ValuationEngine, ValuationService
from repro.monitor import TelemetryHub, Tracer

SEED = 29
N_SELLERS = 6000
N_QUERIES = 48
N_FEATURES = 16
K = 5
N_SHARDS = 4


def render_tree(span: dict, depth: int = 0) -> None:
    """Print one request's span tree from ``result.extra["trace"]``."""
    pad = "  " * depth
    attrs = {
        k: v
        for k, v in span["attributes"].items()
        if k in ("method", "shard", "n_shards", "k_star")
    }
    extra = f"  {attrs}" if attrs else ""
    print(f"{pad}- {span['name']}  {span['seconds'] * 1e3:.2f} ms{extra}")
    for child in span["children"]:
        render_tree(child, depth + 1)


def main() -> None:
    data = gaussian_blobs(
        n_train=N_SELLERS, n_test=N_QUERIES, n_features=N_FEATURES, seed=SEED
    )
    hub = TelemetryHub()
    tracer = Tracer(hub=hub)
    router = ShardRouter(
        data.x_train,
        data.y_train,
        K,
        n_shards=N_SHARDS,
        sharding="data",
        hub=hub,
        tracer=tracer,
    )
    print(
        f"tier: {N_SHARDS} data shards of "
        f"~{N_SELLERS // N_SHARDS} sellers each, K={K}"
    )

    # --- the exact-merge invariant, demonstrated ---------------------
    single = ValuationEngine(data.x_train, data.y_train, K)
    reference = single.value(data.x_test, data.y_test, method="truncated")
    result = router.value(data.x_test, data.y_test, method="truncated")
    err = np.max(np.abs(result.values - reference.values))
    print(f"router vs single engine, truncated method: max |diff| = {err:g}")
    assert err <= 1e-12

    print("\n--- span tree of one routed request ---")
    render_tree(result.extra["trace"])

    # --- one service, queueing valuations and mutations --------------
    with ValuationService(router, n_workers=2) as service:
        jobs = [
            service.submit_batch(data.x_test, data.y_test, tag=f"c{i}")
            for i in range(3)
        ]
        add = service.submit_add(
            data.x_train[:5] + 0.01, data.y_train[:5], tag="new-sellers"
        )
        for job in jobs:
            job.result(timeout=120)
        placed = add.result(timeout=120)
        stats = service.stats()
    print(
        f"\nservice: {stats['n_jobs']} jobs on 2 workers; "
        f"mutation placed {len(placed.indices)} sellers, "
        f"fleet now holds {router.n_train}"
    )

    # --- one hub describes the whole fleet ---------------------------
    print("\n--- per-shard and router streams in the one hub ---")
    for i in range(N_SHARDS):
        n = hub.counter(f"shard{i}.engine.retrievals")
        q = hub.mean(f"shard{i}.backend.brute.query_seconds")
        print(f"  shard{i}: {n} retrievals, mean query {q * 1e3:.2f} ms")
    print(
        f"  router: {hub.n_recorded('router.request_seconds')} requests, "
        f"mean merge {hub.mean('router.merge_seconds') * 1e3:.2f} ms"
    )
    rstats = router.stats()
    print(
        f"\nrouter.stats(): {rstats['counters']['requests']} requests, "
        f"{rstats['counters']['mutations']} mutation(s), "
        f"{len(rstats['shards'])} shard snapshots attached"
    )
    assert rstats["counters"]["degraded_requests"] == 0
    router.close()


if __name__ == "__main__":
    main()
